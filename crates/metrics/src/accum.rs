//! Streaming metric accumulators.
//!
//! §IV-A: "All counters used to compute the metrics in Table I, aside
//! from those used to derive MemUsage, are cumulative. Therefore
//! infrequent (e.g. 10m) sampling intervals over the lifetime of a job
//! does not prevent an accurate calculation of the ARC." The accumulator
//! exploits exactly that: it holds only the previous sample per device
//! instance, cumulative deltas, per-interval deltas for the *Maximum*
//! metrics, and gauge maxima — so a whole quarter of raw data streams
//! through in one pass.

use crate::table1::{JobMetrics, MetricId};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use tacc_collect::record::{HostHeader, Sample};
use tacc_simnode::counter::wrapping_delta;
use tacc_simnode::intern::Sym;
use tacc_simnode::schema::{DeviceType, EventKind, Schema};
use tacc_simnode::topology::CpuArch;

/// Where a counter's per-interval delta lands in [`IntervalDelta`].
///
/// Resolved once per schema at construction ([`slot_kind`]), so `feed`
/// dispatches on a dense per-event `Vec<SlotKind>` instead of matching
/// event-name strings for every value of every sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotKind {
    /// Counter feeds cumulative deltas only.
    None,
    /// Lustre metadata requests (MetaDataRate numerator).
    MdcReqs,
    /// Lnet tx/rx bytes (LnetMaxBW numerator).
    LnetBytes,
    /// Infiniband xmit/rcv words — scaled ×4 to bytes on accumulate.
    IbBytes4x,
    /// cpustat `user` jiffies (counted in both user and total).
    CpuUser,
    /// Any other cpustat counter (total jiffies only).
    CpuOther,
}

/// Map one schema event to its interval slot. The `(DeviceType, "name")`
/// pairs here are the interval-tracked quantities of §IV-A's Maximum
/// metrics; `cargo xtask lint` cross-checks them against the schemas.
fn slot_kind(dt: DeviceType, event: &str) -> SlotKind {
    match (dt, event) {
        (DeviceType::Mdc, "reqs") => SlotKind::MdcReqs,
        (DeviceType::Lnet, "tx_bytes") | (DeviceType::Lnet, "rx_bytes") => SlotKind::LnetBytes,
        (DeviceType::Ib, "port_xmit_data") | (DeviceType::Ib, "port_rcv_data") => {
            SlotKind::IbBytes4x
        }
        (DeviceType::Cpustat, "user") => SlotKind::CpuUser,
        (DeviceType::Cpustat, _) => SlotKind::CpuOther,
        _ => SlotKind::None,
    }
}

/// Per-interval deltas needed by Maximum metrics and `catastrophe`.
#[derive(Clone, Copy, Debug, Default)]
struct IntervalDelta {
    len_secs: f64,
    mdc_reqs: f64,
    lnet_bytes: f64,
    ib_bytes: f64,
    user_jiffies: f64,
    total_jiffies: f64,
}

/// Accumulates one host's samples for one job.
pub struct HostAccum {
    arch: CpuArch,
    schemas: BTreeMap<DeviceType, Schema>,
    /// Per-device interval slots in schema-event order, precomputed from
    /// the schemas so `feed` never matches event names per value.
    slots: BTreeMap<DeviceType, Vec<SlotKind>>,
    /// (device type, interned instance) → (time secs, previous raw
    /// values). `Sym` keys make the per-sample lookup a hash of two
    /// integers and the insert allocation-free.
    prev: HashMap<(DeviceType, Sym), (u64, Vec<u64>)>,
    /// Cumulative deltas per device type, summed over instances, in
    /// schema-event order.
    cum: BTreeMap<DeviceType, Vec<f64>>,
    /// Interval-end time → interval deltas.
    intervals: BTreeMap<u64, IntervalDelta>,
    mem_max_kib: u64,
    t_first: Option<u64>,
    t_last: u64,
    n_samples: usize,
}

impl HostAccum {
    /// New accumulator for a host described by `header`.
    pub fn new(header: &HostHeader) -> HostAccum {
        let slots = header
            .schemas
            .iter()
            .map(|(dt, schema)| {
                let kinds = schema
                    .events
                    .iter()
                    .map(|ev| slot_kind(*dt, ev.name.as_str()))
                    .collect();
                (*dt, kinds)
            })
            .collect();
        HostAccum {
            arch: header.arch,
            schemas: header.schemas.clone(),
            slots,
            prev: HashMap::new(),
            cum: BTreeMap::new(),
            intervals: BTreeMap::new(),
            mem_max_kib: 0,
            t_first: None,
            t_last: 0,
            n_samples: 0,
        }
    }

    /// Number of samples fed.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Observation span in seconds.
    pub fn span_secs(&self) -> f64 {
        match self.t_first {
            Some(t0) => (self.t_last - t0) as f64,
            None => 0.0,
        }
    }

    /// Feed the next sample (must be in time order).
    pub fn feed(&mut self, sample: &Sample) {
        let t = sample.time.as_secs();
        if self.t_first.is_none() {
            self.t_first = Some(t);
        }
        let interval_len = if self.n_samples > 0 {
            (t - self.t_last) as f64
        } else {
            0.0
        };
        self.t_last = t;
        self.n_samples += 1;
        let mut iv = IntervalDelta {
            len_secs: interval_len,
            ..IntervalDelta::default()
        };
        let mut mem_now = 0u64;
        for rec in &sample.devices {
            let Some(schema) = self.schemas.get(&rec.dev_type) else {
                continue;
            };
            if rec.values.len() != schema.len() {
                continue; // malformed record: skip defensively
            }
            // Gauges: MemUsage tracking.
            if rec.dev_type == DeviceType::Mem {
                if let Some(idx) = schema.index_of("MemUsed") {
                    mem_now += rec.values[idx];
                }
                continue;
            }
            let key = (rec.dev_type, rec.instance);
            // Steady state reuses the stored buffer in place: one
            // allocation per instance for the life of the accumulator,
            // not one clone per record per sample.
            let prev_slot = match self.prev.entry(key) {
                Entry::Vacant(v) => {
                    v.insert((t, rec.values.to_vec()));
                    continue; // first observation of this instance
                }
                Entry::Occupied(o) => o.into_mut(),
            };
            let cum = self
                .cum
                .entry(rec.dev_type)
                .or_insert_with(|| vec![0.0; schema.len()]);
            let slots = self.slots.get(&rec.dev_type);
            for (i, ev) in schema.events.iter().enumerate() {
                if ev.kind != EventKind::Counter {
                    continue;
                }
                let d = wrapping_delta(prev_slot.1[i], rec.values[i], ev.width) as f64;
                cum[i] += d;
                // Interval-tracked quantities, by precomputed slot.
                let slot = slots
                    .and_then(|s| s.get(i))
                    .copied()
                    .unwrap_or(SlotKind::None);
                match slot {
                    SlotKind::MdcReqs => iv.mdc_reqs += d,
                    SlotKind::LnetBytes => iv.lnet_bytes += d,
                    SlotKind::IbBytes4x => iv.ib_bytes += d * 4.0,
                    SlotKind::CpuUser => {
                        iv.user_jiffies += d;
                        iv.total_jiffies += d;
                    }
                    SlotKind::CpuOther => iv.total_jiffies += d,
                    SlotKind::None => {}
                }
            }
            prev_slot.0 = t;
            prev_slot.1.clear();
            prev_slot.1.extend_from_slice(&rec.values);
        }
        self.mem_max_kib = self.mem_max_kib.max(mem_now);
        if interval_len > 0.0 {
            self.intervals.insert(t, iv);
        }
    }

    /// Combine another partial accumulation of the *same host* into
    /// this one: cumulative deltas add, interval deltas union, gauge
    /// maxima take the max, and the observation span widens to cover
    /// both parts. Schema/slot tables and per-instance previous-value
    /// state keep this accumulator's entries and adopt the other's only
    /// where absent (for the newest-sample state, the later timestamp
    /// wins) — when the parts cover disjoint sample streams, merging is
    /// exact.
    fn merge(&mut self, other: HostAccum) {
        for (dt, vals) in other.cum {
            match self.cum.entry(dt) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(vals);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let mine = e.get_mut();
                    if mine.len() < vals.len() {
                        mine.resize(vals.len(), 0.0);
                    }
                    for (a, b) in mine.iter_mut().zip(vals) {
                        *a += b;
                    }
                }
            }
        }
        for (t, iv) in other.intervals {
            self.intervals.entry(t).or_insert(iv);
        }
        for (k, v) in other.prev {
            match self.prev.entry(k) {
                Entry::Vacant(e) => {
                    e.insert(v);
                }
                Entry::Occupied(mut e) => {
                    if v.0 > e.get().0 {
                        *e.get_mut() = v;
                    }
                }
            }
        }
        for (dt, schema) in other.schemas {
            self.schemas.entry(dt).or_insert(schema);
        }
        for (dt, kinds) in other.slots {
            self.slots.entry(dt).or_insert(kinds);
        }
        self.mem_max_kib = self.mem_max_kib.max(other.mem_max_kib);
        self.t_first = match (self.t_first, other.t_first) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.t_last = self.t_last.max(other.t_last);
        self.n_samples += other.n_samples;
    }

    /// Cumulative delta of one event, summed over instances.
    fn cum_of(&self, dt: DeviceType, event: &str) -> Option<f64> {
        let schema = self.schemas.get(&dt)?;
        let idx = schema.index_of(event)?;
        self.cum.get(&dt).map(|v| v[idx])
    }

    /// Per-host CPU usage over the whole job (user / total jiffies).
    fn cpu_usage(&self) -> Option<f64> {
        let user = self.cum_of(DeviceType::Cpustat, "user")?;
        let total = ["user", "nice", "system", "idle", "iowait"]
            .iter()
            .filter_map(|e| self.cum_of(DeviceType::Cpustat, e))
            .sum::<f64>();
        if total > 0.0 {
            Some(user / total)
        } else {
            None
        }
    }
}

/// Accumulates all hosts of one job and finalizes into [`JobMetrics`].
#[derive(Default)]
pub struct JobAccum {
    /// Interned hostname → accumulator. `Sym` orders by resolved string,
    /// so iteration stays hostname-sorted; the per-sample entry lookup
    /// allocates nothing.
    hosts: BTreeMap<Sym, HostAccum>,
}

impl JobAccum {
    /// New empty accumulator.
    pub fn new() -> JobAccum {
        JobAccum::default()
    }

    /// Number of hosts seen.
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Feed a sample from `host` (creating the host accumulator from its
    /// header on first sight).
    pub fn feed(&mut self, header: &HostHeader, sample: &Sample) {
        self.hosts
            .entry(header.hostname)
            .or_insert_with(|| HostAccum::new(header))
            .feed(sample);
    }

    /// Merge another job partial into this one. Hosts only one side
    /// saw are adopted wholesale; hosts both sides saw combine via
    /// [`HostAccum::merge`]. Partials produced by splitting a job's
    /// sample stream per host (one rank per node, as
    /// `tacc-core::population` does on the worker pool) merge into
    /// exactly the accumulator the sequential feed would have built, so
    /// `finalize` is bitwise identical.
    pub fn merge(&mut self, other: JobAccum) {
        for (host, acc) in other.hosts {
            match self.hosts.entry(host) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(acc);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(acc),
            }
        }
    }

    /// Mean over hosts of a per-host rate (cumulative delta / span).
    fn avg_rate(&self, f: impl Fn(&HostAccum) -> Option<f64>) -> Option<f64> {
        let mut rates = Vec::new();
        for h in self.hosts.values() {
            let span = h.span_secs();
            if span <= 0.0 {
                continue;
            }
            if let Some(c) = f(h) {
                rates.push(c / span);
            }
        }
        if rates.is_empty() {
            None
        } else {
            Some(rates.iter().sum::<f64>() / rates.len() as f64)
        }
    }

    /// Sum over hosts of a cumulative quantity.
    fn sum_cum(&self, f: impl Fn(&HostAccum) -> Option<f64>) -> Option<f64> {
        let vals: Vec<f64> = self.hosts.values().filter_map(&f).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum())
        }
    }

    /// Maximum over intervals of the node-summed per-interval rate
    /// (the paper's *Maximum* semantics).
    fn max_rate(&self, f: impl Fn(&IntervalDelta) -> f64) -> Option<f64> {
        let mut per_bucket: BTreeMap<u64, (f64, f64)> = BTreeMap::new(); // t → (delta, len)
        for h in self.hosts.values() {
            for (t, iv) in &h.intervals {
                let e = per_bucket.entry(*t).or_insert((0.0, iv.len_secs));
                e.0 += f(iv);
                e.1 = e.1.max(iv.len_secs);
            }
        }
        per_bucket
            .values()
            .filter(|(_, len)| *len > 0.0)
            .map(|(d, len)| d / len)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// Build an accumulator for one job from parsed raw files — the
    /// post-hoc path the real pipeline runs daily over the archive
    /// ("TACC Stats maps the raw output from each node to job ids",
    /// §IV-A). Samples are replayed per host in time order.
    pub fn from_raw_files(raw_files: &[tacc_collect::record::RawFile], jobid: &str) -> JobAccum {
        let mut acc = JobAccum::new();
        // Group (file, sample) pairs per host, sort by time, then feed.
        let mut per_host: std::collections::BTreeMap<
            &str,
            Vec<(&tacc_collect::record::HostHeader, &Sample)>,
        > = std::collections::BTreeMap::new();
        for rf in raw_files {
            for s in &rf.samples {
                if s.jobids.iter().any(|j| j == jobid) {
                    per_host
                        .entry(rf.header.hostname.as_str())
                        .or_default()
                        .push((&rf.header, s));
                }
            }
        }
        for (_, mut samples) in per_host {
            samples.sort_by_key(|(_, s)| s.time.0);
            for (h, s) in samples {
                acc.feed(h, s);
            }
        }
        acc
    }

    /// Accumulated RAPL energy deltas (raw 2^-14 J units) summed over
    /// sockets and nodes: `(pkg, pp0, dram, span_secs)`. `None` when no
    /// host exposes RAPL. Rollover of the 32-bit registers is already
    /// corrected per interval by [`HostAccum::feed`].
    pub fn rapl_units(&self) -> Option<(f64, f64, f64, f64)> {
        let mut pkg = 0.0;
        let mut pp0 = 0.0;
        let mut dram = 0.0;
        let mut span: f64 = 0.0;
        let mut any = false;
        for h in self.hosts.values() {
            if let (Some(p), Some(c), Some(d)) = (
                h.cum_of(DeviceType::Rapl, "MSR_PKG_ENERGY_STATUS"),
                h.cum_of(DeviceType::Rapl, "MSR_PP0_ENERGY_STATUS"),
                h.cum_of(DeviceType::Rapl, "MSR_DRAM_ENERGY_STATUS"),
            ) {
                pkg += p;
                pp0 += c;
                dram += d;
                span = span.max(h.span_secs());
                any = true;
            }
        }
        if any {
            Some((pkg, pp0, dram, span))
        } else {
            None
        }
    }

    /// Finalize into the Table I metric set.
    pub fn finalize(&self) -> JobMetrics {
        let mut m = JobMetrics::new();
        let mb = 1e-6;
        // --- Lustre ---
        if let Some(v) = self.max_rate(|iv| iv.mdc_reqs) {
            m.set(MetricId::MetaDataRate, v);
        }
        if let Some(v) = self.avg_rate(|h| h.cum_of(DeviceType::Mdc, "reqs")) {
            m.set(MetricId::MDCReqs, v);
        }
        if let Some(v) = self.avg_rate(|h| h.cum_of(DeviceType::Osc, "reqs")) {
            m.set(MetricId::OSCReqs, v);
        }
        if let (Some(w), Some(r)) = (
            self.sum_cum(|h| h.cum_of(DeviceType::Mdc, "wait")),
            self.sum_cum(|h| h.cum_of(DeviceType::Mdc, "reqs")),
        ) {
            if r > 0.0 {
                m.set(MetricId::MDCWait, w / r);
            }
        }
        if let (Some(w), Some(r)) = (
            self.sum_cum(|h| h.cum_of(DeviceType::Osc, "wait")),
            self.sum_cum(|h| h.cum_of(DeviceType::Osc, "reqs")),
        ) {
            if r > 0.0 {
                m.set(MetricId::OSCWait, w / r);
            }
        }
        if let Some(v) = self.avg_rate(|h| {
            Some(h.cum_of(DeviceType::Llite, "open")? + h.cum_of(DeviceType::Llite, "close")?)
        }) {
            m.set(MetricId::LLiteOpenClose, v);
        }
        if let Some(v) = self.avg_rate(|h| {
            Some(h.cum_of(DeviceType::Lnet, "tx_bytes")? + h.cum_of(DeviceType::Lnet, "rx_bytes")?)
        }) {
            m.set(MetricId::LnetAveBW, v * mb);
        }
        if let Some(v) = self.max_rate(|iv| iv.lnet_bytes) {
            m.set(MetricId::LnetMaxBW, v * mb);
        }
        // --- Network ---
        let ib_bytes = |h: &HostAccum| {
            Some(
                (h.cum_of(DeviceType::Ib, "port_xmit_data")?
                    + h.cum_of(DeviceType::Ib, "port_rcv_data")?)
                    * 4.0,
            )
        };
        if let Some(v) = self.avg_rate(ib_bytes) {
            m.set(MetricId::InternodeIBAveBW, v * mb);
        }
        if let Some(v) = self.max_rate(|iv| iv.ib_bytes) {
            m.set(MetricId::InternodeIBMaxBW, v * mb);
        }
        let ib_pkts = |h: &HostAccum| {
            Some(
                h.cum_of(DeviceType::Ib, "port_xmit_pkts")?
                    + h.cum_of(DeviceType::Ib, "port_rcv_pkts")?,
            )
        };
        if let (Some(b), Some(p)) = (self.sum_cum(ib_bytes), self.sum_cum(ib_pkts)) {
            if p > 0.0 {
                m.set(MetricId::Packetsize, b / p);
            }
        }
        if let Some(v) = self.avg_rate(ib_pkts) {
            m.set(MetricId::Packetrate, v);
        }
        if let Some(v) = self.avg_rate(|h| {
            Some(h.cum_of(DeviceType::Net, "rx_bytes")? + h.cum_of(DeviceType::Net, "tx_bytes")?)
        }) {
            m.set(MetricId::GigEBW, v * mb);
        }
        // --- Processor ---
        if let Some(v) = self.avg_rate(|h| h.cum_of(DeviceType::Cpu, "LOAD_ALL")) {
            m.set(MetricId::LoadAll, v);
        }
        if let Some(v) = self.avg_rate(|h| h.cum_of(DeviceType::Cpu, "LOAD_L1_HIT")) {
            m.set(MetricId::LoadL1Hits, v);
        }
        if let Some(v) = self.avg_rate(|h| h.cum_of(DeviceType::Cpu, "LOAD_L2_HIT")) {
            m.set(MetricId::LoadL2Hits, v);
        }
        if let Some(v) = self.avg_rate(|h| h.cum_of(DeviceType::Cpu, "LOAD_LLC_HIT")) {
            m.set(MetricId::LoadLLCHits, v);
        }
        let cycles = self.sum_cum(|h| h.cum_of(DeviceType::Cpu, "FIXED_CTR1"));
        let inst = self.sum_cum(|h| h.cum_of(DeviceType::Cpu, "FIXED_CTR0"));
        if let (Some(c), Some(i)) = (cycles, inst) {
            if i > 0.0 {
                m.set(MetricId::Cpi, c / i);
            }
        }
        if let (Some(c), Some(l)) = (
            cycles,
            self.sum_cum(|h| h.cum_of(DeviceType::Cpu, "LOAD_ALL")),
        ) {
            if l > 0.0 {
                m.set(MetricId::Cpld, c / l);
            }
        }
        let width = self
            .hosts
            .values()
            .next()
            .map(|h| h.arch.vector_width_flops() as f64)
            .unwrap_or(1.0);
        if let Some(v) = self.avg_rate(|h| {
            Some(
                h.cum_of(DeviceType::Cpu, "FP_SCALAR")?
                    + width * h.cum_of(DeviceType::Cpu, "FP_VECTOR")?,
            )
        }) {
            m.set(MetricId::Flops, v / 1e9); // GF/s per node
        }
        if let (Some(vec), Some(sca)) = (
            self.sum_cum(|h| h.cum_of(DeviceType::Cpu, "FP_VECTOR")),
            self.sum_cum(|h| h.cum_of(DeviceType::Cpu, "FP_SCALAR")),
        ) {
            if vec + sca > 0.0 {
                m.set(MetricId::VecPercent, 100.0 * vec / (vec + sca));
            }
        }
        if let Some(v) = self.avg_rate(|h| {
            Some(
                (h.cum_of(DeviceType::Imc, "CAS_READS")?
                    + h.cum_of(DeviceType::Imc, "CAS_WRITES")?)
                    * 64.0,
            )
        }) {
            m.set(MetricId::Mbw, v * mb);
        }
        // --- OS ---
        let mem_max = self
            .hosts
            .values()
            .map(|h| h.mem_max_kib)
            .max()
            .unwrap_or(0);
        if mem_max > 0 {
            m.set(MetricId::MemUsage, mem_max as f64 * 1024.0 / 1e9); // GB
        }
        let usages: Vec<f64> = self.hosts.values().filter_map(|h| h.cpu_usage()).collect();
        if !usages.is_empty() {
            m.set(
                MetricId::CpuUsage,
                usages.iter().sum::<f64>() / usages.len() as f64,
            );
            let min = usages.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = usages.iter().cloned().fold(0.0, f64::max);
            if max > 0.0 {
                m.set(MetricId::Idle, min / max);
            }
        }
        // catastrophe: min over time windows of node-summed CPU usage,
        // over the max window.
        {
            let mut per_bucket: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
            for h in self.hosts.values() {
                for (t, iv) in &h.intervals {
                    let e = per_bucket.entry(*t).or_insert((0.0, 0.0));
                    e.0 += iv.user_jiffies;
                    e.1 += iv.total_jiffies;
                }
            }
            let fracs: Vec<(u64, f64)> = per_bucket
                .iter()
                .filter(|(_, (_, tot))| *tot > 0.0)
                .map(|(t, (u, tot))| (*t, u / tot))
                .collect();
            if fracs.len() >= 2 {
                let (t_min, min) = fracs
                    .iter()
                    .copied()
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("nonempty");
                let (t_max, max) = fracs
                    .iter()
                    .copied()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("nonempty");
                if max > 0.0 {
                    m.set(MetricId::Catastrophe, min / max);
                    // §V-A: weak window before the strong one = the job
                    // ramped up (compile step); after = it collapsed
                    // (failure).
                    m.trend = Some(if t_min < t_max {
                        crate::table1::TrendDirection::Rise
                    } else {
                        crate::table1::TrendDirection::Drop
                    });
                }
            }
        }
        if let (Some(u), Some(s), Some(i)) = (
            self.sum_cum(|h| h.cum_of(DeviceType::Mic, "user_sum")),
            self.sum_cum(|h| h.cum_of(DeviceType::Mic, "sys_sum")),
            self.sum_cum(|h| h.cum_of(DeviceType::Mic, "idle_sum")),
        ) {
            let tot = u + s + i;
            if tot > 0.0 {
                m.set(MetricId::MicUsage, u / tot);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_collect::discovery::{discover, BuildOptions};
    use tacc_collect::engine::Sampler;
    use tacc_simnode::pseudofs::NodeFs;
    use tacc_simnode::topology::NodeTopology;
    use tacc_simnode::workload::{LustreDemand, NodeDemand};
    use tacc_simnode::{SimDuration, SimNode, SimTime};

    fn demand() -> NodeDemand {
        NodeDemand {
            active_cores: 16,
            cpu_user_frac: 0.8,
            cpu_sys_frac: 0.01,
            cpi: 1.25,
            flops_per_sec: 4.0e10,
            vector_frac: 0.5,
            loads_per_inst: 0.4,
            l1_hit_frac: 0.9,
            l2_hit_frac: 0.05,
            llc_hit_frac: 0.02,
            mem_bw_bytes_per_sec: 1.0e10,
            mem_used_bytes: 20 << 30,
            ib_bytes_per_sec: 1.0e8,
            ib_pkt_size: 2048.0,
            gige_bytes_per_sec: 1.0e5,
            mic_user_frac: 0.25,
            lustre: vec![LustreDemand {
                mdc_reqs_per_sec: 100.0,
                mdc_wait_us: 500.0,
                osc_reqs_per_sec: 40.0,
                osc_wait_us: 2000.0,
                opens_per_sec: 3.0,
                getattr_per_sec: 10.0,
                read_bytes_per_sec: 1e6,
                write_bytes_per_sec: 4e6,
            }],
            ..NodeDemand::default()
        }
    }

    /// Drive `n_nodes` nodes under one demand, sample every 600 s for
    /// `n_intervals`, and return the finalized metrics.
    fn run_job(n_nodes: usize, n_intervals: usize) -> JobMetrics {
        let mut acc = JobAccum::new();
        for node_idx in 0..n_nodes {
            let mut node = SimNode::new(format!("c401-{node_idx:04}"), NodeTopology::stampede());
            let cfg = {
                let fs = NodeFs::new(&node);
                discover(&fs, BuildOptions::default()).unwrap()
            };
            let mut sampler = Sampler::new(&node.hostname.clone(), &cfg);
            let d = demand();
            // Prime the gauges (MemUsed) so even a single sample sees a
            // live node; counters before the first sample never affect
            // deltas.
            node.advance(SimDuration::from_secs(1), &d);
            for k in 0..=n_intervals {
                if k > 0 {
                    node.advance(SimDuration::from_secs(600), &d);
                }
                let fs = NodeFs::new(&node);
                let s = sampler.sample(
                    &fs,
                    SimTime::from_secs(600 * k as u64),
                    &["1".to_string()],
                    &[],
                );
                acc.feed(sampler.header(), &s);
            }
        }
        acc.finalize()
    }

    #[test]
    fn arc_metrics_recover_demand_rates() {
        let m = run_job(2, 6);
        let g = |id| m.get(id).unwrap();
        // MDCReqs: 100 req/s per node (average over nodes).
        assert!(
            (g(MetricId::MDCReqs) - 100.0).abs() < 1.0,
            "{}",
            g(MetricId::MDCReqs)
        );
        // MDCWait: 500 us per request.
        assert!((g(MetricId::MDCWait) - 500.0).abs() < 5.0);
        // OSC.
        assert!((g(MetricId::OSCReqs) - 40.0).abs() < 1.0);
        assert!((g(MetricId::OSCWait) - 2000.0).abs() < 20.0);
        // Open+close = 6/s.
        assert!((g(MetricId::LLiteOpenClose) - 6.0).abs() < 0.2);
        // IB: 2e8 B/s (xmit+rcv) = 200 MB/s.
        assert!((g(MetricId::InternodeIBAveBW) - 200.0).abs() < 2.0);
        assert!((g(MetricId::Packetsize) - 2048.0).abs() < 20.0);
        // cpi as demanded.
        assert!((g(MetricId::Cpi) - 1.25).abs() < 0.01);
        // flops: 40 GF/s per node.
        assert!((g(MetricId::Flops) - 40.0).abs() < 0.5);
        // VecPercent = 50%.
        assert!((g(MetricId::VecPercent) - 50.0).abs() < 1.0);
        // mbw: 1e10 B/s = 10000 MB/s.
        assert!((g(MetricId::Mbw) - 10_000.0).abs() < 100.0);
        // CPU usage ≈ 0.8 busy-core fraction of the whole node... all 16
        // cores active at 0.8 user + 0.01 sys + idle: user/total ≈ 0.8.
        assert!((g(MetricId::CpuUsage) - 0.8).abs() < 0.02);
        // MemUsage 20 GiB ≈ 21.5 GB.
        assert!((g(MetricId::MemUsage) - 21.47).abs() < 0.5);
        // MIC.
        assert!((g(MetricId::MicUsage) - 0.25).abs() < 0.01);
        // Steady workload: no catastrophe, no imbalance.
        assert!(g(MetricId::Idle) > 0.99);
        assert!(g(MetricId::Catastrophe) > 0.99);
    }

    #[test]
    fn maximum_metrics_sum_over_nodes() {
        // Steady demand: MetaDataRate ≈ n_nodes × per-node rate.
        let m = run_job(3, 4);
        let max_rate = m.get(MetricId::MetaDataRate).unwrap();
        assert!(
            (max_rate - 300.0).abs() < 5.0,
            "MetaDataRate {max_rate} should be ~3×100"
        );
        let ave = m.get(MetricId::MDCReqs).unwrap();
        assert!((ave - 100.0).abs() < 1.0, "per-node average stays ~100");
        // LnetMaxBW ≥ LnetAveBW (max of sums vs per-node average).
        assert!(m.get(MetricId::LnetMaxBW).unwrap() >= m.get(MetricId::LnetAveBW).unwrap());
    }

    #[test]
    fn merged_per_node_partials_match_sequential_feed() {
        // Feed three nodes into one accumulator sequentially, and into
        // three per-node partials merged at the end (the worker-pool
        // fan-out shape): finalize must be bitwise identical.
        let build = |acc: &mut JobAccum, node_idx: usize, busy: bool| {
            let mut node = SimNode::new(format!("c401-{node_idx:04}"), NodeTopology::stampede());
            let cfg = {
                let fs = NodeFs::new(&node);
                discover(&fs, BuildOptions::default()).unwrap()
            };
            let mut sampler = Sampler::new(&node.hostname.clone(), &cfg);
            let d = if busy { demand() } else { NodeDemand::idle() };
            node.advance(SimDuration::from_secs(1), &d);
            for k in 0..=4u64 {
                if k > 0 {
                    node.advance(SimDuration::from_secs(600), &d);
                }
                let fs = NodeFs::new(&node);
                let s = sampler.sample(&fs, SimTime::from_secs(600 * k), &["1".to_string()], &[]);
                acc.feed(sampler.header(), &s);
            }
        };
        let mut sequential = JobAccum::new();
        let mut merged = JobAccum::new();
        for (idx, busy) in [(0usize, true), (1, true), (2, false)] {
            build(&mut sequential, idx, busy);
            let mut partial = JobAccum::new();
            build(&mut partial, idx, busy);
            merged.merge(partial);
        }
        assert_eq!(merged.n_hosts(), sequential.n_hosts());
        let a = sequential.finalize();
        let b = merged.finalize();
        for id in MetricId::ALL {
            assert_eq!(a.get(id), b.get(id), "{id} must match exactly");
        }
        assert_eq!(a.trend, b.trend);
    }

    #[test]
    fn merging_split_sample_streams_of_one_host_is_exact() {
        // Split one host's in-order stream at a sample boundary and
        // merge the halves: cumulative metrics survive because the
        // second half re-observes its first sample as a baseline —
        // merging then adds disjoint deltas and unions disjoint
        // intervals.
        let mut node = SimNode::new("c401-0000", NodeTopology::stampede());
        let cfg = {
            let fs = NodeFs::new(&node);
            discover(&fs, BuildOptions::default()).unwrap()
        };
        let mut sampler = Sampler::new("c401-0000", &cfg);
        let d = demand();
        let mut samples = Vec::new();
        for k in 0..=6u64 {
            if k > 0 {
                node.advance(SimDuration::from_secs(600), &d);
            }
            let fs = NodeFs::new(&node);
            samples.push(sampler.sample(&fs, SimTime::from_secs(600 * k), &[], &[]));
        }
        let header = sampler.header().clone();
        let mut sequential = JobAccum::new();
        for s in &samples {
            sequential.feed(&header, s);
        }
        let mut first = JobAccum::new();
        for s in samples.iter().take(4) {
            first.feed(&header, s);
        }
        let mut second = JobAccum::new();
        // Overlap one sample: it is the second half's delta baseline.
        for s in samples.iter().skip(3) {
            second.feed(&header, s);
        }
        first.merge(second);
        let a = sequential.finalize();
        let b = first.finalize();
        for id in [
            MetricId::MDCReqs,
            MetricId::Cpi,
            MetricId::Flops,
            MetricId::CpuUsage,
            MetricId::MemUsage,
            MetricId::MetaDataRate,
        ] {
            let (x, y) = (a.get(id), b.get(id));
            match (x, y) {
                (Some(x), Some(y)) => {
                    assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{id}: {x} vs {y}")
                }
                _ => assert_eq!(x, y, "{id} presence must match"),
            }
        }
    }

    #[test]
    fn arc_invariant_under_sampling_refinement() {
        // Cumulative counters: 2 samples or 12 samples must give the
        // same ARC metrics (the property §IV-A claims).
        let coarse = run_job(1, 1);
        let fine = run_job(1, 12);
        for id in [
            MetricId::MDCReqs,
            MetricId::Cpi,
            MetricId::Flops,
            MetricId::VecPercent,
            MetricId::CpuUsage,
            MetricId::Mbw,
        ] {
            let a = coarse.get(id).unwrap();
            let b = fine.get(id).unwrap();
            assert!(
                (a - b).abs() / b.abs().max(1e-9) < 0.02,
                "{id}: coarse {a} vs fine {b}"
            );
        }
    }

    #[test]
    fn single_sample_yields_gauges_only() {
        let m = run_job(1, 0);
        assert!(m.get(MetricId::MDCReqs).is_none());
        assert!(m.get(MetricId::Cpi).is_none());
        assert!(m.get(MetricId::MemUsage).is_some());
    }

    #[test]
    fn missing_hardware_leaves_metrics_absent() {
        let topo = NodeTopology {
            has_infiniband: false,
            mic_cards: 0,
            lustre_filesystems: vec![],
            ..NodeTopology::stampede()
        };
        let mut node = SimNode::new("bare-0001", topo);
        let cfg = {
            let fs = NodeFs::new(&node);
            discover(&fs, BuildOptions::default()).unwrap()
        };
        let mut sampler = Sampler::new("bare-0001", &cfg);
        let mut acc = JobAccum::new();
        for k in 0..3u64 {
            if k > 0 {
                node.advance(SimDuration::from_secs(600), &demand());
            }
            let fs = NodeFs::new(&node);
            let s = sampler.sample(&fs, SimTime::from_secs(600 * k), &[], &[]);
            acc.feed(sampler.header(), &s);
        }
        let m = acc.finalize();
        assert!(m.get(MetricId::MDCReqs).is_none());
        assert!(m.get(MetricId::InternodeIBAveBW).is_none());
        assert!(m.get(MetricId::MicUsage).is_none());
        assert!(m.get(MetricId::Cpi).is_some());
        assert!(m.get(MetricId::CpuUsage).is_some());
    }

    #[test]
    fn rapl_rollover_does_not_corrupt_cpu_metrics() {
        // Long job (4 h at 10-min sampling): the 32-bit RAPL registers
        // wrap several times; all other metrics must stay exact.
        let m = run_job(1, 24);
        assert!((m.get(MetricId::Cpi).unwrap() - 1.25).abs() < 0.01);
        assert!((m.get(MetricId::MDCReqs).unwrap() - 100.0).abs() < 1.0);
    }

    #[test]
    fn imbalanced_nodes_show_low_idle_metric() {
        // One busy node, one idle node: idle → ~0.
        let mut acc = JobAccum::new();
        for (node_idx, busy) in [(0usize, true), (1usize, false)] {
            let mut node = SimNode::new(format!("c401-{node_idx:04}"), NodeTopology::stampede());
            let cfg = {
                let fs = NodeFs::new(&node);
                discover(&fs, BuildOptions::default()).unwrap()
            };
            let mut sampler = Sampler::new(&node.hostname.clone(), &cfg);
            let d = if busy { demand() } else { NodeDemand::idle() };
            for k in 0..3u64 {
                if k > 0 {
                    node.advance(SimDuration::from_secs(600), &d);
                }
                let fs = NodeFs::new(&node);
                let s = sampler.sample(&fs, SimTime::from_secs(600 * k), &[], &[]);
                acc.feed(sampler.header(), &s);
            }
        }
        let m = acc.finalize();
        assert!(
            m.get(MetricId::Idle).unwrap() < 0.05,
            "idle = {:?}",
            m.get(MetricId::Idle)
        );
    }

    #[test]
    fn failing_job_shows_catastrophe() {
        // Busy for 3 intervals, dead for 3: catastrophe → ~0.
        let mut node = SimNode::new("c401-0000", NodeTopology::stampede());
        let cfg = {
            let fs = NodeFs::new(&node);
            discover(&fs, BuildOptions::default()).unwrap()
        };
        let mut sampler = Sampler::new("c401-0000", &cfg);
        let mut acc = JobAccum::new();
        for k in 0..=6u64 {
            if k > 0 {
                let d = if k <= 3 { demand() } else { NodeDemand::idle() };
                node.advance(SimDuration::from_secs(600), &d);
            }
            let fs = NodeFs::new(&node);
            let s = sampler.sample(&fs, SimTime::from_secs(600 * k), &[], &[]);
            acc.feed(sampler.header(), &s);
        }
        let m = acc.finalize();
        assert!(
            m.get(MetricId::Catastrophe).unwrap() < 0.05,
            "catastrophe = {:?}",
            m.get(MetricId::Catastrophe)
        );
        // Weak windows come last: a drop (failure signature).
        assert_eq!(m.trend, Some(crate::table1::TrendDirection::Drop));
    }

    #[test]
    fn compile_then_run_job_shows_rise_trend() {
        // Quiet for 3 intervals, busy for 3: catastrophe low, trend Rise.
        let mut node = SimNode::new("c401-0000", NodeTopology::stampede());
        let cfg = {
            let fs = NodeFs::new(&node);
            discover(&fs, BuildOptions::default()).unwrap()
        };
        let mut sampler = Sampler::new("c401-0000", &cfg);
        let mut acc = JobAccum::new();
        for k in 0..=6u64 {
            if k > 0 {
                let d = if k <= 3 { NodeDemand::idle() } else { demand() };
                node.advance(SimDuration::from_secs(600), &d);
            }
            let fs = NodeFs::new(&node);
            let s = sampler.sample(&fs, SimTime::from_secs(600 * k), &[], &[]);
            acc.feed(sampler.header(), &s);
        }
        let m = acc.finalize();
        assert!(m.get(MetricId::Catastrophe).unwrap() < 0.05);
        assert_eq!(m.trend, Some(crate::table1::TrendDirection::Rise));
    }
}
