//! Ingestion: job metadata + computed metrics → database rows.
//!
//! §IV-A: "All of the metrics are stored in the database in the same
//! record as the job metadata. The database can be searched across the
//! computed metrics returning, for example, jobs with metric values that
//! exceed thresholds."

use crate::flags::{Flag, FlagContext, FlagRules};
use crate::table1::{JobMetrics, MetricId};
use tacc_jobdb::{Database, TableSchema, Value, ValueType};
use tacc_scheduler::job::Job;

/// The canonical jobs-table name.
pub const JOBS_TABLE: &str = "jobs";

/// Metadata columns preceding the metric columns (portal job-list
/// fields, §IV-B).
pub const META_COLUMNS: [(&str, ValueType); 16] = [
    ("jobid", ValueType::Int),
    ("user", ValueType::Str),
    ("uid", ValueType::Int),
    ("account", ValueType::Str),
    ("exec", ValueType::Str),
    ("job_name", ValueType::Str),
    ("queue", ValueType::Str),
    ("status", ValueType::Str),
    ("submit", ValueType::Int),
    ("start", ValueType::Int),
    ("end", ValueType::Int),
    ("run_time", ValueType::Int),
    ("queue_wait", ValueType::Int),
    ("nodes", ValueType::Int),
    ("wayness", ValueType::Int),
    ("node_hours", ValueType::Float),
];

/// Build the jobs-table schema: metadata columns, one float column per
/// Table I metric (named by its Table I label), and a `flags` string
/// column.
pub fn jobs_schema() -> TableSchema {
    let mut cols: Vec<(String, ValueType)> = META_COLUMNS
        .iter()
        .map(|(n, t)| (n.to_string(), *t))
        .collect();
    for m in MetricId::ALL {
        cols.push((m.label().to_string(), ValueType::Float));
    }
    cols.push(("flags".to_string(), ValueType::Str));
    let refs: Vec<(&str, ValueType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    TableSchema::new(&refs)
}

/// Create the jobs table in a database.
pub fn create_jobs_table(db: &mut Database) {
    db.create_table(JOBS_TABLE, jobs_schema());
}

/// Build the row for one job. `node_memory_gb` parameterizes the
/// largemem-waste flag rule.
pub fn job_row(
    job: &Job,
    metrics: &JobMetrics,
    rules: &FlagRules,
    node_memory_gb: f64,
) -> Vec<Value> {
    let ctx = FlagContext {
        queue_name: job.queue.name().to_string(),
        node_memory_gb,
    };
    let flags: Vec<Flag> = rules.evaluate(&ctx, metrics);
    let flags_str = flags
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut row: Vec<Value> = vec![
        Value::Int(job.id as i64),
        job.user.as_str().into(),
        Value::Int(job.uid as i64),
        job.account.as_str().into(),
        job.exec.as_str().into(),
        job.job_name.as_str().into(),
        job.queue.name().into(),
        job.status.name().into(),
        Value::Int(job.submit.as_secs() as i64),
        Value::Int(job.start.as_secs() as i64),
        Value::Int(job.end.as_secs() as i64),
        Value::Int(job.run_time().as_secs() as i64),
        Value::Int(job.queue_wait().as_secs() as i64),
        Value::Int(job.n_nodes as i64),
        Value::Int(job.wayness as i64),
        Value::Float(job.node_hours()),
    ];
    for m in MetricId::ALL {
        row.push(match metrics.get(m) {
            Some(v) => Value::Float(v),
            None => Value::Null,
        });
    }
    row.push(flags_str.into());
    row
}

/// Ingest one job into the database (creating the table if needed).
pub fn ingest_job(
    db: &mut Database,
    job: &Job,
    metrics: &JobMetrics,
    rules: &FlagRules,
    node_memory_gb: f64,
) {
    if db.table(JOBS_TABLE).is_none() {
        create_jobs_table(db);
    }
    let row = job_row(job, metrics, rules, node_memory_gb);
    db.insert(JOBS_TABLE, row).expect("jobs schema matches row");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tacc_jobdb::Query;
    use tacc_scheduler::job::{JobStatus, QueueName};
    use tacc_simnode::apps::AppModel;
    use tacc_simnode::topology::NodeTopology;
    use tacc_simnode::SimTime;

    fn job(id: u64, exec: &str) -> Job {
        let mut rng = StdRng::seed_from_u64(id);
        let app = AppModel::wrf().instantiate(&mut rng, 4, 16, &NodeTopology::stampede());
        Job {
            id,
            user: "alice".into(),
            uid: 5001,
            account: "TG-1".into(),
            job_name: "run".into(),
            exec: exec.into(),
            queue: QueueName::Normal,
            n_nodes: 4,
            wayness: 16,
            submit: SimTime::from_secs(0),
            start: SimTime::from_secs(100),
            end: SimTime::from_secs(100 + 7200),
            status: JobStatus::Completed,
            nodes: vec![0, 1, 2, 3],
            idle_nodes: 0,
            app,
        }
    }

    fn metrics(md_rate: f64, cpu: f64) -> JobMetrics {
        let mut m = JobMetrics::new();
        m.set(MetricId::MetaDataRate, md_rate);
        m.set(MetricId::CpuUsage, cpu);
        m
    }

    #[test]
    fn schema_has_all_columns() {
        let s = jobs_schema();
        assert_eq!(s.len(), 16 + 27 + 1);
        assert!(s.index_of("MetaDataRate").is_some());
        assert!(s.index_of("CPU_Usage").is_some());
        assert!(s.index_of("flags").is_some());
        assert!(s.index_of("run_time").is_some());
    }

    #[test]
    fn ingest_and_query_portal_style() {
        let mut db = Database::new();
        ingest_job(
            &mut db,
            &job(1, "wrf.exe"),
            &metrics(3900.0, 0.8),
            &FlagRules::default(),
            34.0,
        );
        ingest_job(
            &mut db,
            &job(2, "wrf.exe"),
            &metrics(563_905.0, 0.67),
            &FlagRules::default(),
            34.0,
        );
        ingest_job(
            &mut db,
            &job(3, "namd2"),
            &metrics(5.0, 0.95),
            &FlagRules::default(),
            34.0,
        );
        let t = db.table(JOBS_TABLE).unwrap();
        assert_eq!(t.len(), 3);
        // Portal search: wrf jobs above a metadata threshold.
        let hot = Query::new(t)
            .filter_kw("exec", "wrf.exe")
            .filter_kw("MetaDataRate__gte", 10_000.0)
            .rows()
            .unwrap();
        assert_eq!(hot.len(), 1);
        // The storm job carries the flag string.
        let idx = t.schema().index_of("flags").unwrap();
        assert!(hot[0]
            .get(idx)
            .as_str()
            .unwrap()
            .contains("HighMetadataRate"));
        // ORM-style aggregation (§V-B): average CPU of wrf population.
        let avg = Query::new(t)
            .filter_kw("exec", "wrf.exe")
            .avg("CPU_Usage")
            .unwrap()
            .unwrap();
        assert!((avg - 0.735).abs() < 1e-9);
    }

    #[test]
    fn missing_metrics_become_nulls() {
        let mut db = Database::new();
        ingest_job(
            &mut db,
            &job(1, "bare.x"),
            &JobMetrics::new(),
            &FlagRules::default(),
            34.0,
        );
        let t = db.table(JOBS_TABLE).unwrap();
        let idx = t.schema().index_of("MIC_Usage").unwrap();
        assert!(t.rows()[0].get(idx).is_null());
        // Null metrics don't match threshold searches.
        assert_eq!(
            Query::new(t)
                .filter_kw("MIC_Usage__gte", 0.0)
                .count()
                .unwrap(),
            0
        );
    }
}
