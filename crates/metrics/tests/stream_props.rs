//! Property tests for the streaming analysis engine (ISSUE: streamed
//! verdict at job end must be provably identical to the batch
//! [`FlagRules::evaluate`], and sketch quantiles must honor the
//! documented `εn` rank bound).
//!
//! The vendored proptest is primitive-only (ranges, tuples, vecs), so
//! raw draws are decoded into metric entries / contexts / trends inside
//! the test bodies.

use proptest::prelude::*;
use tacc_metrics::flags::{FlagContext, FlagRules};
use tacc_metrics::sketch::QuantileSketch;
use tacc_metrics::stream::{FlagSet, FlagStream, FlagStreams};
use tacc_metrics::table1::{JobMetrics, MetricId, TrendDirection};
use tacc_simnode::intern::Sym;

/// Raw draw for one metric entry: (metric index, selector, value). The
/// selector occasionally swaps the value for a non-finite one, which
/// both the batch and streaming paths must ignore.
type RawEntry = (usize, u32, f64);

fn decode_value(sel: u32, raw: f64) -> f64 {
    match sel {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => raw,
    }
}

fn decode_trend(sel: u32) -> Option<TrendDirection> {
    match sel {
        0 => Some(TrendDirection::Rise),
        1 => Some(TrendDirection::Drop),
        _ => None,
    }
}

fn decode_ctx(sel: u32, mem: f64) -> FlagContext {
    let queue = match sel {
        0 => "largemem",
        1 => "gpu",
        _ => "normal",
    };
    FlagContext {
        queue_name: queue.to_string(),
        node_memory_gb: mem,
    }
}

fn metrics_from(entries: &[RawEntry], trend: Option<TrendDirection>) -> JobMetrics {
    let mut m = JobMetrics::new();
    for &(i, sel, raw) in entries {
        m.set(MetricId::ALL[i], decode_value(sel, raw));
    }
    m.trend = trend;
    m
}

fn raw_entries(max_len: usize) -> impl Strategy<Value = Vec<RawEntry>> {
    proptest::collection::vec((0..MetricId::COUNT, 0u32..12, -1e9f64..1e9), 0..max_len)
}

proptest! {
    /// Streamed verdict at job end == batch evaluate, for arbitrary
    /// mid-job estimate traffic before the close-out.
    #[test]
    fn streamed_finish_matches_batch_evaluate(
        estimates in raw_entries(60),
        finals in raw_entries(28),
        trend_sel in 0u32..3,
        queue_sel in 0u32..3,
        mem in 1.0f64..2048.0,
    ) {
        let rules = FlagRules::default();
        let ctx = decode_ctx(queue_sel, mem);
        let m = metrics_from(&finals, decode_trend(trend_sel));

        let mut s = FlagStream::with_context(rules, &ctx);
        for &(i, sel, raw) in &estimates {
            s.update(MetricId::ALL[i], decode_value(sel, raw));
        }
        let streamed = s.finish(&m);

        let batch: FlagSet = rules.evaluate(&ctx, &m).into_iter().collect();
        prop_assert_eq!(streamed, batch);
        // Iteration order matches the batch emission order exactly.
        let streamed_vec: Vec<_> = streamed.iter().collect();
        prop_assert_eq!(streamed_vec, rules.evaluate(&ctx, &m));
    }

    /// The registry close-out path agrees with batch evaluate too, and
    /// drops the job's state.
    #[test]
    fn registry_finish_matches_batch_evaluate(
        estimates in raw_entries(40),
        finals in raw_entries(28),
        trend_sel in 0u32..3,
        queue_sel in 0u32..3,
        mem in 1.0f64..2048.0,
    ) {
        let rules = FlagRules::default();
        let ctx = decode_ctx(queue_sel, mem);
        let m = metrics_from(&finals, decode_trend(trend_sel));
        let job = Sym::new("prop-job");

        let mut reg = FlagStreams::new(rules);
        for &(i, sel, raw) in &estimates {
            reg.update(job, MetricId::ALL[i], decode_value(sel, raw));
        }
        let streamed = reg.finish(job, &ctx, &m);
        let batch: FlagSet = rules.evaluate(&ctx, &m).into_iter().collect();
        prop_assert_eq!(streamed, batch);
        prop_assert!(reg.is_empty());
    }

    /// Sketch quantiles stay within the documented `εn` rank bound of
    /// the exact order statistic for arbitrary finite streams.
    #[test]
    fn sketch_quantiles_within_rank_bound(
        vals in proptest::collection::vec(-1e6f64..1e6, 1..2000),
        eps_m in 1u32..10,
    ) {
        let eps = eps_m as f64 / 100.0;
        let mut sk = QuantileSketch::new(eps);
        for &v in &vals {
            sk.update(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();

        for phi in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let q = sk.quantile(phi).expect("non-empty sketch");
            let rank = ((phi * n as f64).ceil() as usize).max(1);
            let err = (eps * n as f64).ceil() as usize + 1;
            let lo = sorted[rank.saturating_sub(err + 1).min(n - 1)];
            let hi = sorted[(rank + err - 1).min(n - 1)];
            prop_assert!(
                (lo..=hi).contains(&q),
                "phi={} q={} outside [{}, {}] (n={}, eps={})",
                phi, q, lo, hi, n, eps
            );
        }
    }
}
