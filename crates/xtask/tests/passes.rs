//! Negative and property tests for the three new lint passes
//! (lock-order, alloc-lint, crash-order), driven through their
//! in-memory `*_sources` entry points so no temp workspace is needed.
//!
//! Each negative test plants exactly the bug class the pass exists to
//! catch — an inverted lock pair, a `format!` on the codec hot path,
//! an `append_block` ahead of its WAL sync — and asserts the pass
//! fails; a sibling test shows the compliant (or annotated) form is
//! clean. The property tests feed token soup and arbitrary text to
//! every source-level scanner and assert none of them panic.

use proptest::prelude::*;
use xtask::lexer::{excluded_spans, item_fns, mask, method_call_sites, scan};
use xtask::{alloc_lint, crash_order, lock_order};

fn src(path: &str, text: &str) -> Vec<(String, String)> {
    vec![(path.to_string(), text.to_string())]
}

// ---------------------------------------------------------------
// Pass 1: lock-order
// ---------------------------------------------------------------

const STRUCT_AB: &str = "pub struct A {\n    m1: Mutex<u32>,\n    m2: Mutex<u32>,\n}\n";

#[test]
fn inverted_lock_pair_is_a_cycle() {
    let files = src(
        "crates/broker/src/mini.rs",
        &format!(
            "{STRUCT_AB}impl A {{\n    fn f(&self) {{\n        let g = self.m1.lock();\n        let h = self.m2.lock();\n        drop(h);\n        drop(g);\n    }}\n    fn g(&self) {{\n        let g = self.m2.lock();\n        let h = self.m1.lock();\n        drop(h);\n        drop(g);\n    }}\n}}\n"
        ),
    );
    let a = lock_order::analyze_sources(&files);
    assert!(a.errors.is_empty(), "{:?}", a.errors);
    assert!(a.unclassified.is_empty(), "{:?}", a.unclassified);
    assert_eq!(a.classes, ["A.m1", "A.m2"]);
    assert!(a.edges.contains(&("A.m1".into(), "A.m2".into())));
    assert!(a.edges.contains(&("A.m2".into(), "A.m1".into())));
    let cycle = a.cycle().expect("inverted pair must cycle");
    assert!(cycle.len() >= 3, "{cycle:?}");
}

#[test]
fn consistent_lock_order_is_acyclic() {
    let files = src(
        "crates/broker/src/mini.rs",
        &format!(
            "{STRUCT_AB}impl A {{\n    fn f(&self) {{\n        let g = self.m1.lock();\n        let h = self.m2.lock();\n        drop(h);\n        drop(g);\n    }}\n    fn g(&self) {{\n        let g = self.m1.lock();\n        let h = self.m2.lock();\n        drop(h);\n        drop(g);\n    }}\n}}\n"
        ),
    );
    let a = lock_order::analyze_sources(&files);
    assert_eq!(a.edges, [("A.m1".to_string(), "A.m2".to_string())]);
    assert!(a.cycle().is_none(), "{:?}", a.cycle());
}

#[test]
fn double_acquisition_is_a_self_cycle() {
    let files = src(
        "crates/broker/src/mini.rs",
        &format!(
            "{STRUCT_AB}impl A {{\n    fn f(&self) {{\n        let g = self.m1.lock();\n        let h = self.m1.lock();\n        drop(h);\n        drop(g);\n    }}\n}}\n"
        ),
    );
    let a = lock_order::analyze_sources(&files);
    assert!(a.edges.contains(&("A.m1".into(), "A.m1".into())));
    assert!(a.cycle().is_some(), "self-edge is a deadlock");
}

#[test]
fn chained_guard_is_a_temporary_not_a_held_lock() {
    // `self.m1.lock().clone()` binds the *projection*, not the guard:
    // the guard dies at the `;`, so no edge to m2.
    let files = src(
        "crates/broker/src/mini.rs",
        &format!(
            "{STRUCT_AB}impl A {{\n    fn f(&self) -> u32 {{\n        let v = self.m1.lock().clone();\n        let g = self.m2.lock();\n        drop(g);\n        v\n    }}\n}}\n"
        ),
    );
    let a = lock_order::analyze_sources(&files);
    assert!(a.edges.is_empty(), "{:?}", a.edges);
}

#[test]
fn explicit_drop_releases_the_guard() {
    let files = src(
        "crates/broker/src/mini.rs",
        &format!(
            "{STRUCT_AB}impl A {{\n    fn f(&self) {{\n        let g = self.m1.lock();\n        drop(g);\n        let h = self.m2.lock();\n        drop(h);\n    }}\n}}\n"
        ),
    );
    let a = lock_order::analyze_sources(&files);
    assert!(a.edges.is_empty(), "{:?}", a.edges);
}

#[test]
fn shadowed_guard_does_not_leak_the_old_class() {
    // Rebinding `g` drops the m1 guard at end of statement scope in
    // real Rust only at block end — the analyzer keeps both live
    // (over-approximation), so m1→m2 must appear, but never m2→m1.
    let files = src(
        "crates/broker/src/mini.rs",
        &format!(
            "{STRUCT_AB}impl A {{\n    fn f(&self) {{\n        let g = self.m1.lock();\n        let g = self.m2.lock();\n        drop(g);\n    }}\n}}\n"
        ),
    );
    let a = lock_order::analyze_sources(&files);
    assert!(a.edges.contains(&("A.m1".into(), "A.m2".into())));
    assert!(!a.edges.contains(&("A.m2".into(), "A.m1".into())));
}

#[test]
fn match_scrutinee_guard_lives_through_the_arms() {
    // Rust extends match-scrutinee temporaries to the whole match;
    // a lock in an arm is taken while the scrutinee guard is held.
    let files = src(
        "crates/broker/src/mini.rs",
        &format!(
            "{STRUCT_AB}impl A {{\n    fn f(&self) {{\n        match self.m1.lock().checked_add(1) {{\n            Some(_) => {{\n                let g = self.m2.lock();\n                drop(g);\n            }}\n            None => {{}}\n        }}\n    }}\n}}\n"
        ),
    );
    let a = lock_order::analyze_sources(&files);
    assert!(
        a.edges.contains(&("A.m1".into(), "A.m2".into())),
        "{:?}",
        a.edges
    );
}

#[test]
fn transitive_acquisition_through_a_same_impl_callee() {
    // f holds m1 and calls self.helper(), which takes m2: the edge
    // must appear even though f never names m2.
    let files = src(
        "crates/broker/src/mini.rs",
        &format!(
            "{STRUCT_AB}impl A {{\n    fn helper(&self) {{\n        let g = self.m2.lock();\n        drop(g);\n    }}\n    fn f(&self) {{\n        let g = self.m1.lock();\n        self.helper();\n        drop(g);\n    }}\n}}\n"
        ),
    );
    let a = lock_order::analyze_sources(&files);
    assert!(
        a.edges.contains(&("A.m1".into(), "A.m2".into())),
        "{:?}",
        a.edges
    );
}

#[test]
fn annotations_classify_and_suppress() {
    let files = src(
        "crates/broker/src/mini.rs",
        "fn f() {\n    // lock-order: class=Global.bus\n    BUS.lock();\n    // lock-order: not-a-lock\n    file.lock();\n}\n",
    );
    let a = lock_order::analyze_sources(&files);
    assert!(a.errors.is_empty(), "{:?}", a.errors);
    assert!(a.unclassified.is_empty(), "{:?}", a.unclassified);
    assert_eq!(a.classes, ["Global.bus"]);
}

#[test]
fn unattributable_site_is_reported_unclassified() {
    let files = src(
        "crates/broker/src/mini.rs",
        "fn f(q: &Opaque) {\n    q.inner_thing.lock();\n}\n",
    );
    let a = lock_order::analyze_sources(&files);
    assert_eq!(a.unclassified.len(), 1, "{:?}", a.unclassified);
    assert_eq!(a.unclassified[0].1, 2, "line number");
}

#[test]
fn malformed_annotation_is_a_hard_error() {
    let files = src(
        "crates/broker/src/mini.rs",
        "fn f() {\n    // lock-order: classy=Oops\n    BUS.lock();\n}\n",
    );
    let a = lock_order::analyze_sources(&files);
    assert!(!a.errors.is_empty());
}

// ---------------------------------------------------------------
// Pass 2: alloc-lint
// ---------------------------------------------------------------

#[test]
fn format_in_codec_is_a_violation() {
    let files = src(
        "crates/collect/src/codec.rs",
        "fn f(s: &str) -> String {\n    format!(\"x {s}\")\n}\n",
    );
    let r = alloc_lint::scan_sources(&files);
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    let v: Vec<_> = r.violations().collect();
    assert_eq!(v.len(), 1, "{}", v.len());
    assert!(v[0].what.contains("format"), "{}", v[0].what);
    assert_eq!(v[0].line, 2);
}

#[test]
fn cold_annotation_suppresses_but_still_counts() {
    let files = src(
        "crates/collect/src/codec.rs",
        "fn f(s: &str) -> String {\n    // alloc: cold (error path, never on the decode hot loop)\n    format!(\"x {s}\")\n}\n",
    );
    let r = alloc_lint::scan_sources(&files);
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.violations().count(), 0);
    assert_eq!(r.findings.len(), 1, "annotated finding still reported");
    assert!(r.findings[0].cold);
}

#[test]
fn cold_annotation_without_a_reason_is_an_error() {
    let files = src(
        "crates/collect/src/codec.rs",
        "fn f(s: &str) -> String {\n    // alloc: cold\n    format!(\"x {s}\")\n}\n",
    );
    let r = alloc_lint::scan_sources(&files);
    assert!(!r.errors.is_empty(), "reason is mandatory");
}

#[test]
fn arc_clone_path_call_is_the_idiomatic_escape() {
    let files = src(
        "crates/tsdb/src/shard.rs",
        "fn f(x: &Arc<u8>) -> Arc<u8> {\n    let a = x.clone();\n    let b = Arc::clone(x);\n    drop(a);\n    b\n}\n",
    );
    let r = alloc_lint::scan_sources(&files);
    let v: Vec<_> = r.violations().collect();
    assert_eq!(v.len(), 1, "only the method-call .clone() flags");
    assert!(v[0].what.contains("clone"));
    assert_eq!(v[0].line, 2);
}

#[test]
fn cold_fn_covers_the_whole_function_body() {
    let files = src(
        "crates/tsdb/src/wal.rs",
        "// alloc: cold-fn (constructor)\nfn open() -> Vec<u8> {\n    let mut v = Vec::new();\n    v.push(0);\n    v\n}\nfn hot() -> Vec<u8> {\n    Vec::new()\n}\n",
    );
    let r = alloc_lint::scan_sources(&files);
    let v: Vec<_> = r.violations().collect();
    assert_eq!(v.len(), 1, "{:?}: only hot()'s Vec::new flags", v.len());
    assert_eq!(v[0].line, 8);
}

// ---------------------------------------------------------------
// Pass 3: crash-order
// ---------------------------------------------------------------

#[test]
fn append_block_without_wal_sync_violates_rule_a() {
    let v = crash_order::scan_sources(&src(
        "crates/tsdb/src/mini.rs",
        "impl W {\n    fn persist(&mut self, b: &B) {\n        self.seg.append_block(b);\n    }\n}\n",
    ));
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].contains("rule A"), "{}", v[0]);
}

#[test]
fn wal_sync_dominating_append_block_is_clean() {
    let v = crash_order::scan_sources(&src(
        "crates/tsdb/src/mini.rs",
        "impl W {\n    fn persist(&mut self, b: &B) {\n        self.wal.sync();\n        self.seg.append_block(b);\n    }\n}\n",
    ));
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn append_seal_needs_a_segment_sync_not_a_wal_sync() {
    let v = crash_order::scan_sources(&src(
        "crates/tsdb/src/mini.rs",
        "impl W {\n    fn seal(&mut self) {\n        self.wal.sync();\n        self.wal.append_seal();\n    }\n}\n",
    ));
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].contains("rule B"), "{}", v[0]);
    let clean = crash_order::scan_sources(&src(
        "crates/tsdb/src/mini.rs",
        "impl W {\n    fn seal(&mut self) {\n        self.seg.sync();\n        self.wal.append_seal();\n    }\n}\n",
    ));
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn new_generation_annotation_exempts_compaction() {
    let v = crash_order::scan_sources(&src(
        "crates/tsdb/src/mini.rs",
        "impl W {\n    // crash-order: new-generation (fresh invisible files; manifest flip is the commit)\n    fn compact(&mut self, b: &B) {\n        self.seg.append_block(b);\n    }\n}\n",
    ));
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn truncate_outside_recovery_violates_rule_c() {
    let v = crash_order::scan_sources(&src(
        "crates/tsdb/src/mini.rs",
        "fn f(file: &mut F) {\n    file.set_len(0);\n}\n",
    ));
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].contains("rule C"), "{}", v[0]);
    // Same construct in the recovery module is fine.
    let ok = crash_order::scan_sources(&src(
        "crates/tsdb/src/recover.rs",
        "fn f(file: &mut F) {\n    file.set_len(0);\n}\n",
    ));
    assert!(ok.is_empty(), "{ok:?}");
    // And a repair-annotated line is fine anywhere.
    let ok = crash_order::scan_sources(&src(
        "crates/tsdb/src/mini.rs",
        "fn f(file: &mut F) {\n    // crash-order: repair (rewind to the last full frame)\n    file.truncate(boundary);\n}\n",
    ));
    assert!(ok.is_empty(), "{ok:?}");
}

#[test]
fn openoptions_truncate_false_is_not_destructive() {
    let v = crash_order::scan_sources(&src(
        "crates/tsdb/src/mini.rs",
        "fn f() {\n    let o = OpenOptions::new().append(true).truncate(false);\n    drop(o);\n}\n",
    ));
    assert!(v.is_empty(), "{v:?}");
}

// ---------------------------------------------------------------
// Byte soup: no pass may panic (or wedge) on arbitrary input.
// ---------------------------------------------------------------

fn all_passes_survive(text: &str) {
    let masked = mask(text);
    let _ = excluded_spans(&masked);
    let _ = scan(text);
    let _ = method_call_sites(&masked, &["lock", "read", "write", "sync"], true);
    let _ = method_call_sites(&masked, &["append_block", "truncate"], false);
    let _ = item_fns(&masked);
    let files = src("crates/broker/src/soup.rs", text);
    let _ = lock_order::analyze_sources(&files);
    let _ = alloc_lint::scan_sources(&files);
    let _ = crash_order::scan_sources(&files);
}

proptest! {
    #[test]
    fn passes_never_panic_on_arbitrary_text(text in ".{0,400}") {
        all_passes_survive(&text);
    }

    #[test]
    fn passes_never_panic_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("fn f".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(";".to_string()),
                Just("let g = ".to_string()),
                Just("self.m1.lock()".to_string()),
                Just(".read()".to_string()),
                Just("// lock-order: class=A.b".to_string()),
                Just("// alloc: cold".to_string()),
                Just("// crash-order: repair (x)".to_string()),
                Just("\"str".to_string()),
                Just("'c'".to_string()),
                Just("/*".to_string()),
                Just("r#\"".to_string()),
                Just("impl T for".to_string()),
                Just("struct S<'a,".to_string()),
                Just("match x".to_string()),
                Just("=> ".to_string()),
                Just("drop(g)".to_string()),
                Just("\n".to_string()),
                Just("#[cfg(test)]".to_string()),
                Just("format!(".to_string()),
            ],
            0..60,
        ),
    ) {
        let text: String = toks.concat();
        all_passes_survive(&text);
    }
}
