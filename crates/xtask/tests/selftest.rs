//! Lint self-test: the checker must catch deliberately seeded
//! violations (fixtures), enforce the allowlist ratchet in both
//! directions, refuse deny-listed allowances, and pass on the real
//! workspace.

use std::fs;
use std::path::PathBuf;
use xtask::lexer::{scan, LintKind};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).expect("fixture readable")
}

fn count(findings: &[xtask::lexer::Finding], kind: LintKind) -> usize {
    findings.iter().filter(|f| f.kind == kind).count()
}

#[test]
fn seeded_violations_are_all_caught() {
    let findings = scan(&fixture("seeded_violations.rs.fixture"));
    assert_eq!(count(&findings, LintKind::Unwrap), 1, "{findings:?}");
    assert_eq!(count(&findings, LintKind::Expect), 1, "{findings:?}");
    assert_eq!(count(&findings, LintKind::Indexing), 2, "{findings:?}");
    assert_eq!(count(&findings, LintKind::PanicMacro), 2, "{findings:?}");
    assert_eq!(findings.len(), 6, "{findings:?}");
}

#[test]
fn clean_fixture_produces_no_findings() {
    let findings = scan(&fixture("clean.rs.fixture"));
    assert!(findings.is_empty(), "{findings:?}");
}

/// Build a throwaway mini-workspace with one hot-path file and an
/// allowlist, run the panic lint against it, and return the violations.
fn lint_mini_workspace(source: &str, allowlist: &str) -> Result<Vec<String>, String> {
    let root = std::env::temp_dir().join(format!(
        "xtask-selftest-{}-{}",
        std::process::id(),
        source.len() + allowlist.len()
    ));
    for dir in xtask::panic_lint::SCOPE {
        fs::create_dir_all(root.join(dir)).expect("mkdir scope");
    }
    fs::create_dir_all(root.join("crates/xtask")).expect("mkdir xtask");
    fs::write(root.join("crates/collect/src/daemon.rs"), source).expect("write source");
    fs::write(root.join(xtask::panic_lint::ALLOWLIST), allowlist).expect("write allowlist");
    let result = xtask::panic_lint::check(&root);
    fs::remove_dir_all(&root).ok();
    result
}

#[test]
fn deny_listed_file_fails_even_without_allowlist_entry() {
    let errors = lint_mini_workspace("fn f(v: Vec<u8>) -> u8 { v[0] }\n", "").expect("lint runs");
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(errors[0].contains("daemon.rs"), "{errors:?}");
    assert!(errors[0].contains("indexing"), "{errors:?}");
}

#[test]
fn deny_listed_file_cannot_be_allowlisted() {
    let err = lint_mini_workspace(
        "fn f(v: Vec<u8>) -> u8 { v[0] }\n",
        "crates/collect/src/daemon.rs indexing 1\n",
    )
    .expect_err("deny-listed allowance must be rejected");
    assert!(err.contains("deny-listed"), "{err}");
}

#[test]
fn stale_allowance_fails_until_ratchet_is_tightened() {
    let err = lint_mini_workspace("fn f() {}\n", "crates/simnode/src/sim.rs indexing 2\n")
        .expect("lint runs");
    assert_eq!(err.len(), 1, "{err:?}");
    assert!(
        err[0].contains("shrink"),
        "ratchet message expected: {err:?}"
    );
}

#[test]
fn zero_allowance_lines_are_rejected() {
    let err = lint_mini_workspace("fn f() {}\n", "crates/simnode/src/sim.rs indexing 0\n")
        .expect_err("zero allowance is a stale line");
    assert!(err.contains("delete the line"), "{err}");
}

#[test]
fn real_workspace_lint_is_clean() {
    let root = xtask::workspace_root();
    let errors = xtask::run_lint(&root).expect("lint runs");
    assert!(
        errors.is_empty(),
        "workspace lint must pass:\n{}",
        errors.join("\n")
    );
}
