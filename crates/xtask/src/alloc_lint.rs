//! Hot-path allocation lint (pass 2 of `cargo xtask lint`).
//!
//! The benches hold the steady-state pipeline at **0 allocs/op**:
//! the byte codec (`collect::codec`), the columnar block codec and
//! shard read path (`tsdb::block`, `tsdb::shard`), the WAL frame scan
//! and segment codec (`tsdb::wal`, `tsdb::segment`, `tsdb::vfs`), and
//! broker framing (`broker::tcp`). An allocation that creeps into one
//! of those modules silently converts a measured invariant into a
//! regression the benches only catch later, on a loaded machine. This
//! pass deny-lists those modules and flags allocation *constructs*
//! syntactically — constructor paths (`Vec::new`, `String::from`,
//! `Box::new`, …), allocating method calls (`.clone()`, `.collect()`,
//! `.to_vec()`, …), and the `format!`/`vec!` macros. The streaming
//! analysis hot path (`metrics::stream`, `metrics::sketch`) is held to
//! the same bar: `BENCH_stream_path.json` records both at 0 allocs/op
//! per update.
//!
//! Cold paths inside a hot module (error formatting, constructors,
//! recovery) are annotated in the source rather than allowlisted in a
//! side file, so the exemption sits next to the code it excuses:
//!
//! * `// alloc: cold (<why>)` — exempts its own line (trailing) or the
//!   next code line (comment-only line);
//! * `// alloc: cold-fn (<why>)` — exempts the function that starts on
//!   the next code line;
//! * `// alloc: cold-module (<why>)` — exempts the whole file (used by
//!   `tsdb::recover`: recovery is a startup path, not a hot path).
//!
//! The `(<why>)` is mandatory — an exemption without a reason fails
//! the pass. Annotated findings are still counted and reported in the
//! `LintReport` so drift stays visible.
//!
//! Deliberately **not** flagged: `Arc::clone(&x)` (refcount bump — and
//! the idiomatic replacement for a flagged `.clone()` on an `Arc`),
//! and `BytesMut::new()` (allocates nothing until first write).

use crate::lexer::{excluded_spans, item_fns, mask, method_call_sites, Lines};
use crate::util::read_scope;
use std::fmt::Write as _;
use std::path::Path;

/// Modules benchmarked at 0 allocs/op (workspace-relative). All are
/// deny: a new allocation is a violation unless annotated cold.
pub const SCOPE: &[&str] = &[
    "crates/collect/src/codec.rs",
    "crates/broker/src/tcp.rs",
    "crates/tsdb/src/block.rs",
    "crates/tsdb/src/shard.rs",
    "crates/tsdb/src/wal.rs",
    "crates/tsdb/src/segment.rs",
    "crates/tsdb/src/vfs.rs",
    "crates/tsdb/src/recover.rs",
    "crates/metrics/src/stream.rs",
    "crates/metrics/src/sketch.rs",
];

/// Allocating zero-argument method calls.
const ALLOC_METHODS: &[&str] = &[
    "clone",
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "into_bytes",
];

/// Allocating constructor paths (`Type::method`).
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Box", "new"),
    ("Arc", "new"),
    ("Rc", "new"),
    ("HashMap", "new"),
    ("BTreeMap", "new"),
    ("VecDeque", "new"),
    ("HashSet", "new"),
    ("BTreeSet", "new"),
];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// One allocation construct found in a hot module.
pub struct AllocFinding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The construct (`.clone()`, `Vec::new`, `format!`).
    pub what: String,
    /// Trimmed source line.
    pub excerpt: String,
    /// Covered by an `// alloc: cold*` annotation.
    pub cold: bool,
}

/// Pass output: findings plus annotation-syntax errors.
pub struct AllocReport {
    /// Every construct found (cold and hot).
    pub findings: Vec<AllocFinding>,
    /// Malformed annotations (missing reason, unknown form).
    pub errors: Vec<String>,
}

impl AllocReport {
    /// Findings not excused by a cold annotation.
    pub fn violations(&self) -> impl Iterator<Item = &AllocFinding> {
        self.findings.iter().filter(|f| !f.cold)
    }
}

/// Cold spans for one file: exempt whole file, line set, fn spans.
struct ColdMap {
    whole_file: bool,
    lines: Vec<usize>,
    fn_spans: Vec<(usize, usize)>, // char spans
}

fn parse_cold(rel: &str, raw_lines: &[String], masked: &str, errors: &mut Vec<String>) -> ColdMap {
    let fns = item_fns(masked);
    let line_index = Lines::new(masked);
    let mut map = ColdMap {
        whole_file: false,
        lines: Vec::new(),
        fn_spans: Vec::new(),
    };
    for (i, line) in raw_lines.iter().enumerate() {
        let Some(at) = line.find("// alloc:") else {
            continue;
        };
        let text = line[at + "// alloc:".len()..].trim();
        let (form, rest) = text
            .split_once(' ')
            .map(|(a, b)| (a, b.trim()))
            .unwrap_or((text, ""));
        if !(rest.starts_with('(') && rest.ends_with(')') && rest.len() > 2) {
            errors.push(format!(
                "alloc-lint: {rel}:{}: cold annotation needs a reason: \
                 `// alloc: {form} (<why>)`",
                i + 1
            ));
            continue;
        }
        let own_line = !line.trim_start().starts_with("//");
        // The code line the annotation governs.
        let target = if own_line {
            i + 1
        } else {
            let mut t = i + 1;
            while t < raw_lines.len() && raw_lines[t].trim_start().starts_with("//") {
                t += 1;
            }
            t + 1
        };
        match form {
            "cold" => map.lines.push(target),
            "cold-fn" => {
                // Exempt the innermost fn starting at/after the target
                // line (the annotation sits above the signature).
                let f = fns
                    .iter()
                    .filter(|f| line_index.line_of(f.start) >= target)
                    .min_by_key(|f| f.start);
                match f {
                    Some(f) => map.fn_spans.push(f.body),
                    None => errors.push(format!(
                        "alloc-lint: {rel}:{}: cold-fn annotation has no following fn",
                        i + 1
                    )),
                }
            }
            "cold-module" => map.whole_file = true,
            other => errors.push(format!(
                "alloc-lint: {rel}:{}: unknown annotation form `{other}` \
                 (expected cold, cold-fn, or cold-module)",
                i + 1
            )),
        }
    }
    map
}

/// Scan in-memory sources. `check` and the test suite share this.
pub fn scan_sources(files: &[(String, String)]) -> AllocReport {
    let mut findings = Vec::new();
    let mut errors = Vec::new();
    for (rel, text) in files {
        let masked = mask(text);
        let excluded = excluded_spans(&masked);
        let raw_lines: Vec<String> = text.lines().map(str::to_string).collect();
        let cold = parse_cold(rel, &raw_lines, &masked, &mut errors);
        let lines = Lines::new(&masked);
        let chars: Vec<char> = masked.chars().collect();
        let in_excluded = |pos: usize| excluded.iter().any(|(s, e)| pos >= *s && pos < *e);
        let is_cold = |pos: usize, line: usize| {
            cold.whole_file
                || cold.lines.contains(&line)
                || cold.fn_spans.iter().any(|(s, e)| pos >= *s && pos <= *e)
        };
        let mut push = |pos: usize, what: String| {
            if in_excluded(pos) {
                return;
            }
            let line = lines.line_of(pos);
            findings.push(AllocFinding {
                file: rel.clone(),
                line,
                what,
                excerpt: raw_lines
                    .get(line.saturating_sub(1))
                    .map(|l| l.trim().chars().take(90).collect())
                    .unwrap_or_default(),
                cold: is_cold(pos, line),
            });
        };

        // Allocating method calls — zero-argument only, so
        // `.clone_from(&x)` or a user `collect(into)` never match.
        for site in method_call_sites(&masked, ALLOC_METHODS, true) {
            // `Arc::clone(&x)` never reaches here (path call, not a
            // method call); `arc.clone()` does and is flagged — the
            // fix is to spell the refcount bump `Arc::clone`.
            push(site.pos, format!(".{}()", site.method));
        }

        // Constructor paths and macros, by token walk.
        let n = chars.len();
        let mut i = 0;
        while i < n {
            let c = chars[i];
            if !is_word(c) || c.is_ascii_digit() || (i != 0 && is_word(chars[i - 1])) {
                i += 1;
                continue;
            }
            let s = i;
            while i < n && is_word(chars[i]) {
                i += 1;
            }
            let word: String = chars[s..i].iter().collect();
            // Macro?
            if i < n && chars[i] == '!' && ALLOC_MACROS.contains(&word.as_str()) {
                push(s, format!("{word}!"));
                continue;
            }
            // Path constructor? `Type::method` with `Type` not itself
            // path-qualified further left is enough — `std::vec::Vec`
            // still ends in `Vec::new`.
            if s >= 2 && chars[s - 1] == ':' && chars[s - 2] == ':' {
                let mut q = s - 2;
                while q > 0 && chars[q - 1].is_whitespace() {
                    q -= 1;
                }
                let te = q;
                let mut ts = q;
                while ts > 0 && is_word(chars[ts - 1]) {
                    ts -= 1;
                }
                let ty: String = chars[ts..te].iter().collect();
                if ALLOC_PATHS
                    .iter()
                    .any(|(t, m)| *t == ty && *m == word.as_str())
                {
                    push(ts, format!("{ty}::{word}"));
                }
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    AllocReport { findings, errors }
}

fn is_word(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Full pass against the workspace: violations are hot findings plus
/// annotation errors. Returns `(violations, report)`.
pub fn check(root: &Path) -> Result<(Vec<String>, AllocReport), String> {
    let files = read_scope(root, SCOPE, "alloc-lint")?;
    let report = scan_sources(&files);
    let mut errors = report.errors.clone();
    let mut hot: std::collections::BTreeMap<&str, Vec<&AllocFinding>> = Default::default();
    for f in report.violations() {
        hot.entry(&f.file).or_default().push(f);
    }
    for (file, fs) in hot {
        let mut msg = format!(
            "alloc-lint: {file}: {} allocation construct(s) in a 0 allocs/op module \
             — restructure, or annotate a genuinely cold site with `// alloc: cold (<why>)`:",
            fs.len()
        );
        for f in fs {
            let _ = write!(msg, "\n    {file}:{}: {} — {}", f.line, f.what, f.excerpt);
        }
        errors.push(msg);
    }
    Ok((errors, report))
}
