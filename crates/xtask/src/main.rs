//! CLI for `cargo xtask`. See the library crate for the checks.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") | None => {
            let root = xtask::workspace_root();
            match xtask::run_lint(&root) {
                Ok(errors) if errors.is_empty() => {
                    println!("xtask lint: all checks passed");
                    ExitCode::SUCCESS
                }
                Ok(errors) => {
                    for e in &errors {
                        eprintln!("{e}");
                    }
                    eprintln!("xtask lint: {} violation(s)", errors.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(other) => {
            eprintln!("unknown xtask command `{other}`; available: lint");
            ExitCode::FAILURE
        }
    }
}
