//! CLI for `cargo xtask`. See the library crate for the checks.
//!
//! ```text
//! cargo xtask lint [--json <path>] [--fix-ratchet]
//! ```
//!
//! `--json` writes the machine-readable `LintReport` (the CI
//! artifact); `--fix-ratchet` first rewrites the allowlists down to
//! current finding counts (never up), then lints.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") | None => lint(&args[args.len().min(1)..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`; available: lint");
            ExitCode::FAILURE
        }
    }
}

fn lint(flags: &[String]) -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut fix_ratchet = false;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("--json requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--fix-ratchet" => fix_ratchet = true,
            other => {
                eprintln!("unknown lint flag `{other}`; available: --json <path>, --fix-ratchet");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = xtask::workspace_root();
    if fix_ratchet {
        match xtask::report::fix_ratchets(&root) {
            Ok(changed) if changed.is_empty() => println!("fix-ratchet: nothing to tighten"),
            Ok(changed) => {
                for f in changed {
                    println!("fix-ratchet: tightened {f}");
                }
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = match xtask::run_report(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("xtask lint: write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let violations = report.violations();
    print!("{}", report.summary());
    if violations.is_empty() {
        println!("xtask lint: all 5 passes clean");
        ExitCode::SUCCESS
    } else {
        for e in &violations {
            eprintln!("{e}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
