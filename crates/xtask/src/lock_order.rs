//! Lock-order deadlock analysis (pass 1 of `cargo xtask lint`).
//!
//! The sharded engine takes `Mutex`/`RwLock` guards in eleven modules
//! across broker, simnode, and tsdb. A deadlock needs two locks
//! acquired in opposite orders on two threads — so the pass extracts
//! every `.lock()` / `.read()` / `.write()` acquisition site,
//! attributes each to a named **lock class** (the struct field or
//! static the lock hangs off), records a *may-hold-while-acquiring*
//! edge for every acquisition performed while another guard is live,
//! and fails if the resulting graph has a cycle (a self-edge — same
//! class re-acquired while held — counts: `parking_lot` locks are not
//! reentrant).
//!
//! # Lock-class naming
//!
//! * `Struct.field` — a lock stored in a struct field (`Queue.inner`);
//!   elements of a lock-bearing collection field share the container's
//!   class (`SimCluster.nodes`).
//! * `STATIC_NAME` — a lock in a `static`.
//! * `fn::var` — a lock created locally in `fn` (`map_parts::slots`).
//!
//! # Attribution
//!
//! Sites resolve in order: an explicit `// lock-order:` annotation,
//! `self.field` via the enclosing `impl` block's struct, a workspace-
//! unique `(field, kind)` match for other receivers, a local
//! `let`/`static` definition. Receivers that reach a *non-lock* field
//! (`self.counters[i].read()` on a `Vec<Counter>`) are recognised and
//! skipped. Anything else is **unclassified** and must be ratcheted in
//! `crates/xtask/lock-allowlist.txt` (`<path> <count>` lines) — the
//! allowlist is for sites the lexer cannot attribute, never for real
//! ordering violations.
//!
//! Annotations (written in the source, comment-only line applies to the
//! next code line, trailing comment to its own line):
//!
//! * `// lock-order: class=<Class>` — attribute the site by hand;
//! * `// lock-order: not-a-lock` — the call is not a lock acquisition.
//!
//! # Approximations
//!
//! Guard lifetimes are tracked lexically: a `let`-bound guard lives to
//! the end of its block (or an explicit `drop(var)`), a temporary to
//! the end of its statement (through an attached `if let`/`match`
//! block). Calls made while a guard is held add edges to every lock
//! class the callee may acquire, computed as a same-file transitive
//! closure, plus a small table of known cross-crate acquirers (the
//! symbol interner). This over-approximates holding and misses
//! cross-crate propagation by design — the nightly TSan job is the
//! dynamic cross-check.

use crate::lexer::{excluded_spans, item_fns, mask, method_call_sites, CallSite, ItemFn, Lines};
use crate::util::read_scope;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;

/// Source trees the analyzer walks (workspace-relative).
pub const SCOPE: &[&str] = &["crates/broker/src", "crates/simnode/src", "crates/tsdb/src"];

/// Workspace-relative path of the unclassified-site ratchet file.
pub const ALLOWLIST: &str = "crates/xtask/lock-allowlist.txt";

/// Methods treated as guard acquisitions (zero-argument calls only —
/// `Condvar::wait(&mut g)` and `Counter::read(&self)`-style calls with
/// arguments never match).
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Cross-crate acquirers the same-file closure cannot see: these
/// callees take the global `SymbolTable.inner` lock. Suppressed inside
/// the interner's own defining modules, where the same names are the
/// implementation itself.
const KNOWN_ACQUIRERS: &[(&str, &str)] = &[
    // (callee pattern, class) — pattern is `Type::name` or `.name`.
    ("Sym::new", "SymbolTable.inner"),
    (".intern", "SymbolTable.inner"),
    (".as_str", "SymbolTable.inner"),
    (".resolve", "SymbolTable.inner"),
    (".route4", "SymbolTable.inner"),
];
const INTERNER_FILES: &[&str] = &["crates/simnode/src/intern.rs", "crates/core/src/intern.rs"];

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum LockKind {
    Mutex,
    RwLock,
}

/// Result of analysing a set of sources.
pub struct Analysis {
    /// Every lock class discovered, sorted.
    pub classes: Vec<String>,
    /// May-hold-while-acquiring edges (held → acquired), deduplicated.
    pub edges: Vec<(String, String)>,
    /// Sites the analyzer could not attribute: `(path, line, excerpt)`.
    pub unclassified: Vec<(String, usize, String)>,
    /// Hard errors (malformed annotations).
    pub errors: Vec<String>,
}

impl Analysis {
    /// First cycle in the edge graph, as a class path `a → b → … → a`,
    /// if any.
    pub fn cycle(&self) -> Option<Vec<String>> {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in &self.edges {
            adj.entry(a).or_default().push(b);
        }
        // Iterative DFS with colouring; reconstruct the cycle from the
        // active path when a grey node is re-entered.
        let mut colour: BTreeMap<&str, u8> = BTreeMap::new(); // 1 grey, 2 black
        for start in adj.keys().copied().collect::<Vec<_>>() {
            if colour.get(start).copied().unwrap_or(0) != 0 {
                continue;
            }
            let mut path: Vec<&str> = Vec::new();
            let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
            while let Some((node, idx)) = stack.pop() {
                if idx == 0 {
                    colour.insert(node, 1);
                    path.push(node);
                }
                let nexts = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
                if idx < nexts.len() {
                    stack.push((node, idx + 1));
                    let next = nexts[idx];
                    match colour.get(next).copied().unwrap_or(0) {
                        1 => {
                            let from = path.iter().position(|n| *n == next).unwrap_or(0);
                            let mut cycle: Vec<String> =
                                path[from..].iter().map(|s| s.to_string()).collect();
                            cycle.push(next.to_string());
                            return Some(cycle);
                        }
                        0 => stack.push((next, 0)),
                        _ => {}
                    }
                } else {
                    colour.insert(node, 2);
                    path.pop();
                }
            }
        }
        None
    }
}

#[derive(Clone, Debug)]
enum Directive {
    NotALock,
    Class(String),
}

struct ParsedFile {
    rel: String,
    raw_lines: Vec<String>,
    masked: Vec<char>,
    excluded: Vec<(usize, usize)>,
    fns: Vec<ItemFn>,
    sites: Vec<CallSite>,
    directives: BTreeMap<usize, Directive>,
    /// struct name → field name → lock kind (None = non-lock field).
    structs: BTreeMap<String, BTreeMap<String, Option<LockKind>>>,
    /// static name → kind.
    statics: BTreeMap<String, LockKind>,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn kind_of_type(ty: &str) -> Option<LockKind> {
    let flat: String = ty.chars().filter(|c| !c.is_whitespace()).collect();
    if flat.contains("Mutex<") {
        Some(LockKind::Mutex)
    } else if flat.contains("RwLock<") {
        Some(LockKind::RwLock)
    } else {
        None
    }
}

/// Parse `// lock-order:` annotations from raw source lines.
fn parse_directives(
    rel: &str,
    raw_lines: &[String],
    errors: &mut Vec<String>,
) -> BTreeMap<usize, Directive> {
    let mut map = BTreeMap::new();
    for (i, line) in raw_lines.iter().enumerate() {
        let Some(at) = line.find("// lock-order:") else {
            continue;
        };
        let text = line[at + "// lock-order:".len()..].trim();
        let directive = if text == "not-a-lock" {
            Directive::NotALock
        } else if let Some(class) = text.strip_prefix("class=") {
            let class = class.trim();
            if class.is_empty()
                || !class
                    .chars()
                    .all(|c| is_ident_char(c) || c == '.' || c == ':')
            {
                errors.push(format!(
                    "lock-order: {rel}:{}: bad class name in annotation: `{text}`",
                    i + 1
                ));
                continue;
            }
            Directive::Class(class.to_string())
        } else {
            errors.push(format!(
                "lock-order: {rel}:{}: unknown annotation `{text}` \
                 (expected `class=<Class>` or `not-a-lock`)",
                i + 1
            ));
            continue;
        };
        // A comment-only line annotates the next code line; a trailing
        // comment annotates its own line.
        let target = if line.trim_start().starts_with("//") {
            let mut t = i + 1;
            while t < raw_lines.len() && raw_lines[t].trim_start().starts_with("//") {
                t += 1;
            }
            t + 1
        } else {
            i + 1
        };
        map.insert(target, directive);
    }
    map
}

/// Parse `struct Name { field: Type, … }` declarations from masked text.
fn parse_structs(chars: &[char]) -> BTreeMap<String, BTreeMap<String, Option<LockKind>>> {
    let n = chars.len();
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < n {
        if !(is_ident_char(chars[i]) && (i == 0 || !is_ident_char(chars[i - 1]))) {
            i += 1;
            continue;
        }
        let s = i;
        while i < n && is_ident_char(chars[i]) {
            i += 1;
        }
        let word: String = chars[s..i].iter().collect();
        if word != "struct" {
            continue;
        }
        let mut k = i;
        while k < n && chars[k].is_whitespace() {
            k += 1;
        }
        let ns = k;
        while k < n && is_ident_char(chars[k]) {
            k += 1;
        }
        if ns == k {
            continue;
        }
        let name: String = chars[ns..k].iter().collect();
        // Skip generics to the body; tuple structs and unit structs
        // have no named fields to record.
        let mut angle = 0i32;
        while k < n {
            match chars[k] {
                '<' => angle += 1,
                '>' if k > 0 && chars[k - 1] != '-' => {
                    angle -= 1;
                }
                '{' if angle <= 0 => break,
                '(' | ';' if angle <= 0 => {
                    k = n;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if k >= n {
            continue;
        }
        // Fields: split the brace body at depth-1 commas; each chunk's
        // field name is the ident right before its first top-level `:`.
        let body_start = k + 1;
        let mut depth = 1i32;
        let mut e = body_start;
        while e < n && depth > 0 {
            match chars[e] {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            e += 1;
        }
        let body: String = chars[body_start..e.saturating_sub(1)].iter().collect();
        let mut fields = BTreeMap::new();
        let mut chunk = String::new();
        let (mut d_par, mut d_ang, mut d_brk, mut d_brc) = (0i32, 0i32, 0i32, 0i32);
        let mut prev = ' ';
        for c in body.chars().chain(std::iter::once(',')) {
            match c {
                '(' => d_par += 1,
                ')' => d_par -= 1,
                '[' => d_brk += 1,
                ']' => d_brk -= 1,
                '{' => d_brc += 1,
                '}' => d_brc -= 1,
                '<' => d_ang += 1,
                '>' if prev != '-' => {
                    d_ang -= 1;
                }
                ',' if d_par == 0 && d_ang <= 0 && d_brk == 0 && d_brc == 0 => {
                    if let Some(colon) = chunk.find(':') {
                        // Not `::`.
                        if chunk.as_bytes().get(colon + 1) != Some(&b':') {
                            let fname = chunk[..colon]
                                .split(|c: char| !is_ident_char(c))
                                .rfind(|w| !w.is_empty())
                                .unwrap_or("")
                                .to_string();
                            if !fname.is_empty() && fname != "pub" && fname != "crate" {
                                fields.insert(fname, kind_of_type(&chunk[colon + 1..]));
                            }
                        }
                    }
                    chunk.clear();
                    prev = c;
                    continue;
                }
                _ => {}
            }
            chunk.push(c);
            prev = c;
        }
        out.insert(name, fields);
        i = e;
    }
    out
}

/// Parse `static NAME: <lock type>` declarations from masked text.
fn parse_statics(chars: &[char]) -> BTreeMap<String, LockKind> {
    let n = chars.len();
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < n {
        if !(is_ident_char(chars[i]) && (i == 0 || !is_ident_char(chars[i - 1]))) {
            i += 1;
            continue;
        }
        let s = i;
        while i < n && is_ident_char(chars[i]) {
            i += 1;
        }
        let word: String = chars[s..i].iter().collect();
        if word != "static" {
            continue;
        }
        let mut k = i;
        let mut name = String::new();
        while k < n {
            while k < n && chars[k].is_whitespace() {
                k += 1;
            }
            let ns = k;
            while k < n && is_ident_char(chars[k]) {
                k += 1;
            }
            if ns == k {
                break;
            }
            let w: String = chars[ns..k].iter().collect();
            if w != "mut" {
                name = w;
                break;
            }
        }
        while k < n && chars[k].is_whitespace() {
            k += 1;
        }
        if name.is_empty() || k >= n || chars[k] != ':' {
            continue;
        }
        let ts = k + 1;
        let mut e = ts;
        let mut angle = 0i32;
        while e < n {
            match chars[e] {
                '<' => angle += 1,
                '>' if chars[e - 1] != '-' => {
                    angle -= 1;
                }
                '=' | ';' if angle <= 0 => break,
                _ => {}
            }
            e += 1;
        }
        let ty: String = chars[ts..e.min(n)].iter().collect();
        if let Some(kind) = kind_of_type(&ty) {
            out.insert(name, kind);
        }
        i = e;
    }
    out
}

fn in_excluded(excluded: &[(usize, usize)], pos: usize) -> bool {
    excluded.iter().any(|(s, e)| pos >= *s && pos < *e)
}

fn innermost_fn(fns: &[ItemFn], pos: usize) -> Option<&ItemFn> {
    fns.iter()
        .filter(|f| f.contains(pos))
        .min_by_key(|f| f.body.1 - f.body.0)
}

/// How a classified acquisition site resolved.
enum Resolved {
    Class(String),
    NotALock,
    Unclassified,
}

/// A call event observed in a function body: `(pos, qualifier, name)`.
/// `qualifier` is `Some(Type)` for `Type::name(`, `None` for `.name(`
/// and bare `name(` (`dotted` distinguishes them). `self_recv` marks
/// `self.name(` — the only dotted form the same-file closure expands,
/// so a `vec.len()` under a guard never resolves to an unrelated
/// `fn len` in the file.
struct CallEvent {
    pos: usize,
    qualifier: Option<String>,
    dotted: bool,
    self_recv: bool,
    name: String,
}

fn parse_file(rel: &str, text: &str, errors: &mut Vec<String>) -> ParsedFile {
    let masked_s = mask(text);
    let excluded = excluded_spans(&masked_s);
    let masked: Vec<char> = masked_s.chars().collect();
    let fns = item_fns(&masked_s);
    let sites = method_call_sites(&masked_s, LOCK_METHODS, true);
    let raw_lines: Vec<String> = text.lines().map(str::to_string).collect();
    let directives = parse_directives(rel, &raw_lines, errors);
    ParsedFile {
        rel: rel.to_string(),
        raw_lines,
        structs: parse_structs(&masked),
        statics: parse_statics(&masked),
        masked,
        excluded,
        fns,
        sites,
        directives,
    }
}

/// Analyse in-memory sources. The entry point `check` and the test
/// suite share this.
pub fn analyze_sources(files: &[(String, String)]) -> Analysis {
    let mut errors = Vec::new();
    let parsed: Vec<ParsedFile> = files
        .iter()
        .map(|(rel, text)| parse_file(rel, text, &mut errors))
        .collect();

    // Workspace-global lookup tables.
    let mut field_map: BTreeMap<(String, LockKind), BTreeSet<String>> = BTreeMap::new();
    let mut nonlock_fields: BTreeSet<String> = BTreeSet::new();
    let mut statics: BTreeMap<String, LockKind> = BTreeMap::new();
    let mut struct_files: BTreeMap<&str, &BTreeMap<String, Option<LockKind>>> = BTreeMap::new();
    for pf in &parsed {
        for (sname, fields) in &pf.structs {
            struct_files.entry(sname).or_insert(fields);
            for (fname, kind) in fields {
                match kind {
                    Some(k) => {
                        field_map
                            .entry((fname.clone(), *k))
                            .or_default()
                            .insert(sname.clone());
                    }
                    None => {
                        nonlock_fields.insert(fname.clone());
                    }
                }
            }
        }
        for (name, kind) in &pf.statics {
            statics.insert(name.clone(), *kind);
        }
    }

    let mut classes: BTreeSet<String> = BTreeSet::new();
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    let mut unclassified: Vec<(String, usize, String)> = Vec::new();

    for pf in &parsed {
        let lines = Lines::new(&pf.masked.iter().collect::<String>());
        // Classify every non-test site in this file.
        let mut resolved: Vec<(usize, Resolved)> = Vec::new(); // (site idx, result)
        for (si, site) in pf.sites.iter().enumerate() {
            if in_excluded(&pf.excluded, site.pos) {
                continue;
            }
            let r = classify(
                pf,
                site,
                &struct_files,
                &field_map,
                &nonlock_fields,
                &statics,
            );
            match &r {
                Resolved::Class(c) => {
                    classes.insert(c.clone());
                }
                Resolved::Unclassified => {
                    let excerpt = pf
                        .raw_lines
                        .get(site.line.saturating_sub(1))
                        .map(|l| l.trim().chars().take(90).collect::<String>())
                        .unwrap_or_default();
                    unclassified.push((pf.rel.clone(), site.line, excerpt));
                }
                Resolved::NotALock => {}
            }
            resolved.push((si, r));
        }

        // Per-fn direct classes + call events, then the same-file
        // transitive closure of may-acquire sets.
        let fn_count = pf.fns.len();
        let mut direct: Vec<BTreeSet<String>> = vec![BTreeSet::new(); fn_count];
        let mut fn_sites: Vec<Vec<(usize, String)>> = vec![Vec::new(); fn_count]; // (site idx, class)
        for (si, r) in &resolved {
            let site = &pf.sites[*si];
            let Some(f) = innermost_fn(&pf.fns, site.pos) else {
                continue;
            };
            let fi = pf
                .fns
                .iter()
                .position(|g| std::ptr::eq(g, f))
                .unwrap_or(usize::MAX);
            if fi == usize::MAX {
                continue;
            }
            if let Resolved::Class(c) = r {
                direct[fi].insert(c.clone());
                fn_sites[fi].push((*si, c.clone()));
            }
        }

        let interner_file = INTERNER_FILES.contains(&pf.rel.as_str());
        let mut fn_calls: Vec<Vec<CallEvent>> = Vec::with_capacity(fn_count);
        for (fi, f) in pf.fns.iter().enumerate() {
            let evs = call_events(&pf.masked, f, &pf.excluded);
            if !interner_file {
                for ev in &evs {
                    for (pat, class) in KNOWN_ACQUIRERS {
                        if matches_acquirer(ev, pat) {
                            direct[fi].insert(class.to_string());
                            classes.insert(class.to_string());
                        }
                    }
                }
            }
            fn_calls.push(evs);
        }

        // Same-file call graph: resolve each event to fn indices.
        // `Type::name(` resolves within `impl Type`; `self.name(`
        // within the caller's own impl; bare `name(` to free fns.
        // Dotted calls on other receivers are NOT expanded — common
        // method names (`len`, `get`) would otherwise alias unrelated
        // lock-taking methods in the same file.
        let resolve_callee = |ev: &CallEvent, caller_impl: Option<&str>| -> Vec<usize> {
            pf.fns
                .iter()
                .enumerate()
                .filter(|(_, g)| {
                    g.name == ev.name
                        && match &ev.qualifier {
                            Some(t) => g.impl_type.as_deref() == Some(t.as_str()),
                            None if ev.dotted => {
                                ev.self_recv && g.impl_type.as_deref() == caller_impl
                            }
                            None => g.impl_type.is_none(),
                        }
                })
                .map(|(i, _)| i)
                .collect()
        };
        let call_graph: Vec<Vec<usize>> = fn_calls
            .iter()
            .enumerate()
            .map(|(fi, evs)| {
                let caller_impl = pf.fns[fi].impl_type.as_deref();
                let mut cs: Vec<usize> = evs
                    .iter()
                    .flat_map(|ev| resolve_callee(ev, caller_impl))
                    .collect();
                cs.sort_unstable();
                cs.dedup();
                cs
            })
            .collect();
        let mut trans = direct.clone();
        loop {
            let mut changed = false;
            for fi in 0..fn_count {
                for &ci in &call_graph[fi] {
                    if ci == fi {
                        continue;
                    }
                    let add: Vec<String> = trans[ci].difference(&trans[fi]).cloned().collect();
                    if !add.is_empty() {
                        trans[fi].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Guard-tracking walk of every fn body: edges from each live
        // guard to each new acquisition (direct, via same-file callee,
        // or via a known cross-crate acquirer).
        for (fi, f) in pf.fns.iter().enumerate() {
            let mut acq: Vec<(usize, String)> = fn_sites[fi].clone();
            acq.sort_by_key(|(si, _)| pf.sites[*si].pos);
            let caller_impl = f.impl_type.clone();
            walk_fn(
                pf,
                f,
                &acq,
                &fn_calls[fi],
                &|ev| resolve_callee(ev, caller_impl.as_deref()),
                &trans,
                interner_file,
                &lines,
                &mut edges,
            );
        }
    }

    Analysis {
        classes: classes.into_iter().collect(),
        edges: edges.into_iter().collect(),
        unclassified,
        errors,
    }
}

fn matches_acquirer(ev: &CallEvent, pat: &str) -> bool {
    if let Some(m) = pat.strip_prefix('.') {
        ev.dotted && ev.qualifier.is_none() && ev.name == m
    } else if let Some((ty, m)) = pat.split_once("::") {
        ev.qualifier.as_deref() == Some(ty) && ev.name == m
    } else {
        false
    }
}

fn classify(
    pf: &ParsedFile,
    site: &CallSite,
    struct_files: &BTreeMap<&str, &BTreeMap<String, Option<LockKind>>>,
    field_map: &BTreeMap<(String, LockKind), BTreeSet<String>>,
    nonlock_fields: &BTreeSet<String>,
    statics: &BTreeMap<String, LockKind>,
) -> Resolved {
    if let Some(d) = pf.directives.get(&site.line) {
        return match d {
            Directive::NotALock => Resolved::NotALock,
            Directive::Class(c) => Resolved::Class(c.clone()),
        };
    }
    let kind = if site.method == "lock" {
        LockKind::Mutex
    } else {
        LockKind::RwLock
    };
    let Some(last) = site.chain.last() else {
        return Resolved::Unclassified;
    };
    if last.called || last.name.contains("::") {
        // Receiver is a call result (`guard_for(x).lock()`) — needs an
        // annotation.
        return Resolved::Unclassified;
    }
    let f = &last.name;
    if site.chain.len() == 1 {
        // Bare identifier: local let or static.
        if let Some(k) = statics.get(f) {
            if *k == kind {
                return Resolved::Class(f.clone());
            }
        }
        if let Some(fn_item) = innermost_fn(&pf.fns, site.pos) {
            if local_let_is_lock(&pf.masked, fn_item, site.pos, f, kind) {
                return Resolved::Class(format!("{}::{}", fn_item.name, f));
            }
        }
        return Resolved::Unclassified;
    }
    // `self.field` resolves through the enclosing impl's struct first.
    if site.chain.len() == 2 && site.chain[0].name == "self" && !site.chain[0].called {
        if let Some(t) = innermost_fn(&pf.fns, site.pos).and_then(|g| g.impl_type.clone()) {
            if let Some(fields) = pf
                .structs
                .get(&t)
                .or_else(|| struct_files.get(t.as_str()).copied())
            {
                match fields.get(f) {
                    Some(Some(k)) if *k == kind => return Resolved::Class(format!("{t}.{f}")),
                    Some(None) => return Resolved::NotALock,
                    Some(Some(_)) => return Resolved::Unclassified,
                    None => {} // fall through to the global map
                }
            }
        }
    }
    // Any other receiver: workspace-unique (field, kind) match.
    match field_map.get(&(f.clone(), kind)) {
        Some(owners) if owners.len() == 1 => {
            let owner = owners.iter().next().map(String::as_str).unwrap_or("?");
            Resolved::Class(format!("{owner}.{f}"))
        }
        Some(_) => Resolved::Unclassified,
        None if nonlock_fields.contains(f) => Resolved::NotALock,
        None => Resolved::Unclassified,
    }
}

/// Does `name` bind a lock created locally in this fn before `pos`?
fn local_let_is_lock(
    masked: &[char],
    fn_item: &ItemFn,
    pos: usize,
    name: &str,
    kind: LockKind,
) -> bool {
    let body: String = masked[fn_item.body.0..pos.min(masked.len())]
        .iter()
        .collect();
    let needle_kind = match kind {
        LockKind::Mutex => "Mutex",
        LockKind::RwLock => "RwLock",
    };
    for (i, _) in body.match_indices("let ") {
        let rest = &body[i + 4..];
        let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
        if !rest.starts_with(name) || rest[name.len()..].starts_with(|c: char| is_ident_char(c)) {
            continue;
        }
        let stmt_end = rest.find(';').unwrap_or(rest.len());
        let stmt = &rest[..stmt_end];
        let flat: String = stmt.chars().filter(|c| !c.is_whitespace()).collect();
        if flat.contains(&format!("{needle_kind}::new"))
            || flat.contains(&format!(":{needle_kind}<"))
        {
            return true;
        }
    }
    false
}

/// One live guard during the body walk.
struct Guard {
    class: String,
    var: Option<String>,
    depth: i32,
    temp: bool,
}

#[allow(clippy::too_many_arguments)]
fn walk_fn(
    pf: &ParsedFile,
    f: &ItemFn,
    acquisitions: &[(usize, String)], // (site idx, class), sorted by pos
    calls: &[CallEvent],
    resolve_callee: &dyn Fn(&CallEvent) -> Vec<usize>,
    trans: &[BTreeSet<String>],
    interner_file: bool,
    _lines: &Lines,
    edges: &mut BTreeSet<(String, String)>,
) {
    let chars = &pf.masked;
    let (start, end) = f.body;
    if start >= end {
        return;
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut acq_iter = acquisitions.iter().peekable();
    let mut call_iter = calls.iter().peekable();
    let mut depth = 0i32;
    let mut i = start;
    while i <= end && i < chars.len() {
        // Acquisition reached?
        while let Some((si, class)) = acq_iter.peek() {
            let site = &pf.sites[*si];
            if site.pos > i {
                break;
            }
            for g in &guards {
                edges.insert((g.class.clone(), class.clone()));
            }
            let (var, temp) = binding_of(chars, site);
            guards.push(Guard {
                class: class.clone(),
                var,
                depth,
                temp,
            });
            acq_iter.next();
        }
        // Call made while guards are live?
        while let Some(ev) = call_iter.peek() {
            if ev.pos > i {
                break;
            }
            if !guards.is_empty() {
                let mut acquired: BTreeSet<&str> = BTreeSet::new();
                for ci in resolve_callee(ev) {
                    for c in &trans[ci] {
                        acquired.insert(c);
                    }
                }
                if !interner_file {
                    for (pat, class) in KNOWN_ACQUIRERS {
                        if matches_acquirer(ev, pat) {
                            acquired.insert(class);
                        }
                    }
                }
                for g in &guards {
                    for c in &acquired {
                        edges.insert((g.class.clone(), c.to_string()));
                    }
                }
            }
            // `drop(var)` releases a let-bound guard early.
            if ev.name == "drop" && ev.qualifier.is_none() && !ev.dotted {
                if let Some(arg) = single_ident_arg(chars, ev.pos) {
                    guards.retain(|g| g.var.as_deref() != Some(arg.as_str()));
                }
            }
            call_iter.next();
        }
        match chars[i] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                guards.retain(|g| {
                    if g.temp {
                        g.depth < depth
                    } else {
                        g.depth <= depth
                    }
                });
            }
            ';' => guards.retain(|g| !(g.temp && g.depth == depth)),
            _ => {}
        }
        i += 1;
    }
}

/// For a lock site, decide whether the guard is `let`-bound (returns
/// the variable) or a temporary. A site whose call is chained onward
/// (`.lock().field…`) is always a temporary — the binding holds the
/// projection, not the guard.
fn binding_of(chars: &[char], site: &CallSite) -> (Option<String>, bool) {
    let n = chars.len();
    // Find the `(` after the method name, then its `)`.
    let mut j = site.pos;
    while j < n && is_ident_char(chars[j]) {
        j += 1;
    }
    while j < n && chars[j] != '(' {
        j += 1;
    }
    let mut d = 0i32;
    while j < n {
        match chars[j] {
            '(' => d += 1,
            ')' => {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let mut k = j + 1;
    while k < n && (chars[k].is_whitespace() || chars[k] == '?') {
        k += 1;
    }
    if k < n && (chars[k] == '.' || chars[k] == '[') {
        return (None, true);
    }
    // Scan back from the chain start for `let [mut] ident =`.
    let mut p = site.chain_start;
    while p > 0 {
        p -= 1;
        let c = chars[p];
        if c.is_whitespace() {
            continue;
        }
        if c != '=' {
            return (None, true);
        }
        // `=` but not `==`/`=>`/compound assignment.
        if p > 0
            && matches!(
                chars[p - 1],
                '=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
            )
        {
            return (None, true);
        }
        // Ident before `=`?
        let mut q = p;
        while q > 0 && chars[q - 1].is_whitespace() {
            q -= 1;
        }
        let ie = q;
        while q > 0 && is_ident_char(chars[q - 1]) {
            q -= 1;
        }
        if q == ie {
            return (None, true); // destructuring pattern — temp guard
        }
        let var: String = chars[q..ie].iter().collect();
        // Walk back over `mut` / type annotation to confirm `let`.
        let before: String = chars[f0(q, 64)..q].iter().collect();
        let toks: Vec<&str> = before
            .split(|c: char| !is_ident_char(c))
            .filter(|w| !w.is_empty())
            .collect();
        let is_let = matches!(toks.last().copied(), Some("let") | Some("mut"))
            || toks.iter().rev().take(3).any(|w| *w == "let");
        if is_let {
            return (Some(var), false);
        }
        return (None, true);
    }
    (None, true)
}

fn f0(q: usize, back: usize) -> usize {
    q.saturating_sub(back)
}

/// Extract `ident(` call events inside a fn body (excluding macro
/// invocations, definitions, and the lock methods themselves).
fn call_events(chars: &[char], f: &ItemFn, excluded: &[(usize, usize)]) -> Vec<CallEvent> {
    let (start, end) = f.body;
    let n = chars.len().min(end + 1);
    let mut out = Vec::new();
    let mut i = start;
    while i < n {
        let c = chars[i];
        if !is_ident_char(c) || c.is_ascii_digit() || (i != 0 && is_ident_char(chars[i - 1])) {
            i += 1;
            continue;
        }
        let s = i;
        while i < n && is_ident_char(chars[i]) {
            i += 1;
        }
        let name: String = chars[s..i].iter().collect();
        let mut k = i;
        while k < n && chars[k].is_whitespace() {
            k += 1;
        }
        if k >= n || chars[k] != '(' {
            continue;
        }
        if in_excluded(excluded, s) {
            continue;
        }
        if LOCK_METHODS.contains(&name.as_str()) {
            continue;
        }
        // Not a definition (`fn name(`) and not a macro (`name!(`).
        let mut b = s;
        while b > 0 && chars[b - 1].is_whitespace() {
            b -= 1;
        }
        let prev_word: String = {
            let mut q = b;
            while q > 0 && is_ident_char(chars[q - 1]) {
                q -= 1;
            }
            chars[q..b].iter().collect()
        };
        if prev_word == "fn" {
            continue;
        }
        let (mut qualifier, mut dotted, mut self_recv) = (None, false, false);
        if b >= 2 && chars[b - 1] == ':' && chars[b - 2] == ':' {
            let mut q = b - 2;
            while q > 0 && chars[q - 1].is_whitespace() {
                q -= 1;
            }
            let qe = q;
            while q > 0 && is_ident_char(chars[q - 1]) {
                q -= 1;
            }
            if q < qe {
                qualifier = Some(chars[q..qe].iter().collect());
            }
        } else if b >= 1 && chars[b - 1] == '.' {
            dotted = true;
            let mut q = b - 1;
            while q > 0 && chars[q - 1].is_whitespace() {
                q -= 1;
            }
            let qe = q;
            while q > 0 && is_ident_char(chars[q - 1]) {
                q -= 1;
            }
            let recv: String = chars[q..qe].iter().collect();
            // `self.name(` only — `self.field.name(` has a field
            // between and is not a same-impl method call.
            self_recv = recv == "self" && (q == 0 || chars[q.saturating_sub(1)] != '.');
        }
        out.push(CallEvent {
            pos: s,
            qualifier,
            dotted,
            self_recv,
            name,
        });
    }
    out
}

/// Extract the single-identifier argument of a call at `pos`
/// (`drop(pile)` → `pile`), if the argument is exactly one ident.
fn single_ident_arg(chars: &[char], pos: usize) -> Option<String> {
    let n = chars.len();
    let mut i = pos;
    while i < n && is_ident_char(chars[i]) {
        i += 1;
    }
    while i < n && chars[i].is_whitespace() {
        i += 1;
    }
    if i >= n || chars[i] != '(' {
        return None;
    }
    i += 1;
    while i < n && chars[i].is_whitespace() {
        i += 1;
    }
    let s = i;
    while i < n && is_ident_char(chars[i]) {
        i += 1;
    }
    let arg: String = chars[s..i].iter().collect();
    while i < n && chars[i].is_whitespace() {
        i += 1;
    }
    (i < n && chars[i] == ')' && !arg.is_empty()).then_some(arg)
}

/// Run the analyzer against the workspace.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    let files = read_scope(root, SCOPE, "lock-order")?;
    Ok(analyze_sources(&files))
}

/// Full pass: analysis + cycle check + unclassified-site ratchet.
/// Returns `(violations, analysis)`.
pub fn check(root: &Path) -> Result<(Vec<String>, Analysis), String> {
    let analysis = analyze(root)?;
    let mut errors = analysis.errors.clone();

    if let Some(cycle) = analysis.cycle() {
        errors.push(format!(
            "lock-order: cycle in the may-hold-while-acquiring graph: {}",
            cycle.join(" → ")
        ));
    }

    // Ratchet unclassified sites per file.
    let allowed = parse_allowlist(root)?;
    let mut per_file: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();
    for (rel, line, excerpt) in &analysis.unclassified {
        per_file
            .entry(rel.clone())
            .or_default()
            .push((*line, excerpt.clone()));
    }
    let keys: BTreeSet<String> = per_file
        .keys()
        .cloned()
        .chain(allowed.keys().cloned())
        .collect();
    for file in keys {
        let found = per_file.get(&file).map(Vec::len).unwrap_or(0);
        let allowance = allowed.get(&file).copied().unwrap_or(0);
        if found > allowance {
            let mut msg = format!(
                "lock-order: {file}: {found} unclassifiable acquisition site(s), \
                 allowance is {allowance} — attribute with `// lock-order: class=<Class>` \
                 (or `not-a-lock`):"
            );
            for (line, excerpt) in per_file.get(&file).into_iter().flatten() {
                let _ = write!(msg, "\n    {file}:{line}: {excerpt}");
            }
            errors.push(msg);
        } else if found < allowance {
            errors.push(format!(
                "lock-order: {file}: allowance is {allowance} but only {found} \
                 unclassifiable site(s) remain — shrink {ALLOWLIST} (the ratchet \
                 only tightens)"
            ));
        }
    }
    Ok((errors, analysis))
}

/// Parse the ratchet file: `<path> <count>` per line, `#` comments.
/// A missing file is an empty allowlist.
pub fn parse_allowlist(root: &Path) -> Result<BTreeMap<String, usize>, String> {
    let path = root.join(ALLOWLIST);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(format!("lock-order: read {}: {e}", path.display())),
    };
    let mut allowed = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(file), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "{ALLOWLIST}:{}: expected `<path> <count>`, got: {line}",
                lineno + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("{ALLOWLIST}:{}: bad count `{count}`", lineno + 1))?;
        if count == 0 {
            return Err(format!(
                "{ALLOWLIST}:{}: zero allowance for {file} — delete the line",
                lineno + 1
            ));
        }
        if allowed.insert(file.to_string(), count).is_some() {
            return Err(format!(
                "{ALLOWLIST}:{}: duplicate entry for {file}",
                lineno + 1
            ));
        }
    }
    Ok(allowed)
}
