//! Panic-freedom lint for the collection hot path.
//!
//! The daemon pipeline (sampling → spool → broker → consumer) runs
//! unattended on thousands of nodes; a panic there is a monitoring
//! outage (§III of the paper: the monitor must be *always on*). This
//! lint walks the hot-path crates and rejects panic-capable constructs
//! in non-test code: `unwrap`/`expect`, panicking macros, and unchecked
//! indexing (`debug_assert*` is fine — it compiles out of release).
//!
//! Intentional exceptions live in a checked-in allowlist
//! (`crates/xtask/panic-allowlist.txt`) with *ratchet* semantics:
//!
//! * a file with **more** findings than its allowance fails (new
//!   violations never land), and
//! * a file with **fewer** findings than its allowance also fails until
//!   the allowance is shrunk (progress is locked in; the allowlist can
//!   only shrink, never grow back silently).
//!
//! A hard deny-list covers the modules the pipeline's delivery
//! guarantees depend on — `collect::daemon`, `collect::spool`,
//! `broker::queue`, plus the transport endpoints `broker::tcp` and
//! `collect::consumer`, and the shared data-representation layer every
//! sample now rides: the interner (`simnode::intern` and its
//! `core::intern` re-export), the byte codec (`collect::codec`), and
//! the columnar block codec every stored point round-trips through
//! (`tsdb::block`). The parallel execution layer joins them: the
//! scoped worker pool (`simnode::pool` and its `core::pool`
//! re-export) runs under every fan-out site, and the shard layer
//! (`tsdb::shard`) routes every stored sample — a panic in either
//! poisons a lock or wedges the pipeline. Those may never appear in
//! the allowlist at all. The durability tier joins them: the virtual
//! disk (`tsdb::vfs`), the WAL and segment codecs (`tsdb::wal`,
//! `tsdb::segment`), and recovery itself (`tsdb::recover`) are the
//! code that must keep running — and keep its promises — while the
//! disk is actively failing, so a panic there turns an injected fault
//! into a crash loop. The streaming analysis engine
//! (`metrics::stream`, `metrics::sketch`) joins the deny tier too:
//! both run inside the consumer drain on every sample, so a panic
//! there takes the real-time analysis loop down with the pipeline.

use crate::lexer::{scan, LintKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Hot-path source trees (or single files) the lint walks
/// (workspace-relative). `crates/core/src/intern.rs` is a file entry:
/// the rest of `tacc-core` is orchestration, but the interner re-export
/// is part of the sample path's data representation.
pub const SCOPE: &[&str] = &[
    "crates/collect/src",
    "crates/broker/src",
    "crates/simnode/src",
    "crates/core/src/intern.rs",
    "crates/core/src/pool.rs",
    "crates/tsdb/src/block.rs",
    "crates/tsdb/src/shard.rs",
    "crates/tsdb/src/vfs.rs",
    "crates/tsdb/src/wal.rs",
    "crates/tsdb/src/segment.rs",
    "crates/tsdb/src/recover.rs",
    "crates/metrics/src/stream.rs",
    "crates/metrics/src/sketch.rs",
];

/// Modules whose allowance is pinned to zero: never allowlisted.
pub const DENY: &[&str] = &[
    "crates/collect/src/daemon.rs",
    "crates/collect/src/spool.rs",
    "crates/collect/src/consumer.rs",
    "crates/collect/src/codec.rs",
    "crates/broker/src/queue.rs",
    "crates/broker/src/tcp.rs",
    "crates/simnode/src/intern.rs",
    "crates/simnode/src/pool.rs",
    "crates/core/src/intern.rs",
    "crates/core/src/pool.rs",
    "crates/tsdb/src/block.rs",
    "crates/tsdb/src/shard.rs",
    "crates/tsdb/src/vfs.rs",
    "crates/tsdb/src/wal.rs",
    "crates/tsdb/src/segment.rs",
    "crates/tsdb/src/recover.rs",
    "crates/metrics/src/stream.rs",
    "crates/metrics/src/sketch.rs",
];

/// Workspace-relative path of the allowlist file.
pub const ALLOWLIST: &str = "crates/xtask/panic-allowlist.txt";

/// Run the panic-freedom lint from the workspace root. Returns the
/// list of violations (empty means the lint passes).
pub fn check(root: &Path) -> Result<Vec<String>, String> {
    let allowed = parse_allowlist(root)?;
    let mut errors = Vec::new();
    let actual = findings(root)?;

    let keys: std::collections::BTreeSet<(String, LintKind)> = actual
        .keys()
        .cloned()
        .chain(allowed.keys().cloned())
        .collect();
    for key in keys {
        let (file, kind) = &key;
        let found = actual.get(&key).map(Vec::len).unwrap_or(0);
        let allowance = allowed.get(&key).copied().unwrap_or(0);
        if found > allowance {
            let mut msg = format!(
                "panic-lint: {file}: {found} `{kind}` finding(s), allowance is {allowance}:"
            );
            for (line, excerpt) in actual.get(&key).into_iter().flatten() {
                let _ = write!(msg, "\n    {file}:{line}: {excerpt}");
            }
            errors.push(msg);
        } else if found < allowance {
            errors.push(format!(
                "panic-lint: {file}: allowance for `{kind}` is {allowance} but only \
                 {found} finding(s) remain — shrink {ALLOWLIST} (the ratchet only \
                 tightens)"
            ));
        }
    }
    Ok(errors)
}

/// Findings per `(file, kind)`: `(line, excerpt)` locations.
type FindingMap = BTreeMap<(String, LintKind), Vec<(usize, String)>>;

/// Scan the lint scope, returning findings per `(file, kind)` with
/// locations for reports.
fn findings(root: &Path) -> Result<FindingMap, String> {
    let mut actual: FindingMap = BTreeMap::new();
    for rel in crate::util::walk_scope(root, SCOPE, "panic-lint")? {
        let path = root.join(&rel);
        let source = fs::read_to_string(&path)
            .map_err(|e| format!("panic-lint: read {}: {e}", path.display()))?;
        for f in scan(&source) {
            actual
                .entry((rel.clone(), f.kind))
                .or_default()
                .push((f.line, f.excerpt));
        }
    }
    Ok(actual)
}

/// Current finding counts per `(file, kind)` — `--fix-ratchet` input.
pub(crate) fn actual_counts(root: &Path) -> Result<BTreeMap<(String, LintKind), usize>, String> {
    Ok(findings(root)?
        .into_iter()
        .map(|(k, v)| (k, v.len()))
        .collect())
}

/// Parse the allowlist: `<path> <kind> <count>` per line, `#` comments.
/// Deny-listed files, unknown kinds, duplicates, and paths outside the
/// lint scope are hard errors.
pub(crate) fn parse_allowlist(root: &Path) -> Result<BTreeMap<(String, LintKind), usize>, String> {
    let path = root.join(ALLOWLIST);
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("panic-lint: read {}: {e}", path.display()))?;
    let mut allowed = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(file), Some(kind), Some(count), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "{ALLOWLIST}:{}: expected `<path> <kind> <count>`, got: {line}",
                lineno + 1
            ));
        };
        let kind = LintKind::from_key(kind)
            .ok_or_else(|| format!("{ALLOWLIST}:{}: unknown lint kind `{kind}`", lineno + 1))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("{ALLOWLIST}:{}: bad count `{count}`", lineno + 1))?;
        if count == 0 {
            return Err(format!(
                "{ALLOWLIST}:{}: zero allowance for {file} — delete the line",
                lineno + 1
            ));
        }
        if DENY.contains(&file) {
            return Err(format!(
                "{ALLOWLIST}:{}: {file} is deny-listed (hot-path delivery \
                 guarantee) and may never be allowlisted",
                lineno + 1
            ));
        }
        if !SCOPE.iter().any(|s| file.starts_with(s)) {
            return Err(format!(
                "{ALLOWLIST}:{}: {file} is outside the lint scope",
                lineno + 1
            ));
        }
        if allowed.insert((file.to_string(), kind), count).is_some() {
            return Err(format!(
                "{ALLOWLIST}:{}: duplicate entry for {file} {kind}",
                lineno + 1
            ));
        }
    }
    Ok(allowed)
}
