//! Schema ↔ metric conformance check.
//!
//! Table I metrics are computed from raw events by name; a typo'd or
//! removed event silently yields `None` at runtime (the accumulator
//! treats an unknown event as "device absent"). This check makes the
//! contract static at lint time:
//!
//! 1. every event a [`MetricId`] declares it consumes (via
//!    `MetricId::events()`) exists in the device schema of at least one
//!    supported architecture, and events missing on *some* arch must be
//!    in the known arch-gated set (Nehalem has 4 programmable counters,
//!    so the `LOAD_*` cache events don't exist there);
//! 2. every such event's [`Unit`] has a usable `to_base()` conversion
//!    (finite, positive — the rate math divides by it);
//! 3. `MetricId::ALL` is exhaustive (enforced at compile time by the
//!    `define_metric_ids!` macro; re-asserted here for the report);
//! 4. every `(DeviceType, "event")` pair referenced *textually* in the
//!    accumulator source (`crates/metrics/src/accum.rs`) also resolves
//!    against some schema — catching consumers that bypass `events()`;
//! 5. the accumulator keys its per-instance state by `(DeviceType,
//!    Sym)` — interned symbols, not owned strings. A `(DeviceType,
//!    String)` key would reintroduce a per-sample allocation on the
//!    accumulate hot path;
//! 6. shard routing covers every metric-bearing series key: for each
//!    event a `MetricId` consumes, the tsdb's `shard_of` must be
//!    deterministic, in range, and — across a population of hosts —
//!    surjective for every supported shard count, so no shard is
//!    structurally unreachable (an unreachable shard would silently
//!    halve effective parallelism and hide data-placement bugs).

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;
use tacc_metrics::MetricId;
use tacc_simnode::schema::DeviceType;
use tacc_simnode::topology::CpuArch;
use tacc_tsdb::{shard_of, SeriesKey, DEFAULT_SHARDS};

/// Architectures the conformance check validates against.
pub const ARCHES: [CpuArch; 3] = [CpuArch::Nehalem, CpuArch::SandyBridge, CpuArch::Haswell];

/// Event gaps that are expected on specific architectures: Nehalem's 4
/// programmable counters can't host the cache-load events.
const KNOWN_ARCH_GAPS: &[(CpuArch, DeviceType, &str)] = &[
    (CpuArch::Nehalem, DeviceType::Cpu, "LOAD_L2_HIT"),
    (CpuArch::Nehalem, DeviceType::Cpu, "LOAD_LLC_HIT"),
];

/// Workspace-relative path of the accumulator source scanned in step 4.
pub const ACCUM_SRC: &str = "crates/metrics/src/accum.rs";

/// Run the conformance check. Returns violations (empty = pass).
pub fn check(root: &Path) -> Result<Vec<String>, String> {
    let mut errors = Vec::new();

    // 3. Exhaustiveness (compile-time guaranteed; asserted for the report).
    if MetricId::ALL.len() != MetricId::COUNT {
        errors.push(format!(
            "conformance: MetricId::ALL has {} entries but COUNT is {}",
            MetricId::ALL.len(),
            MetricId::COUNT
        ));
    }

    // 1 + 2. Declared event consumption resolves against the schemas.
    for id in MetricId::ALL {
        let events = id.events();
        if events.is_empty() {
            errors.push(format!(
                "conformance: {id:?} declares no consumed events — \
                 every Table I metric must come from somewhere"
            ));
            continue;
        }
        for &(device, event) in events {
            check_event(&mut errors, format!("{id:?}"), device, event);
        }
    }

    // 4. Textual references in the accumulator source.
    let accum_path = root.join(ACCUM_SRC);
    let source = fs::read_to_string(&accum_path)
        .map_err(|e| format!("conformance: read {}: {e}", accum_path.display()))?;
    for (device, event) in extract_device_events(&source) {
        check_event(
            &mut errors,
            format!("{ACCUM_SRC} reference"),
            device,
            &event,
        );
    }

    // 5. Interned accumulator keys.
    errors.extend(check_interned_keys(&source));

    // 6. Shard routing over every metric-bearing series key.
    errors.extend(check_shard_routing());

    Ok(errors)
}

/// Shard counts the routing check must stay surjective for (powers of
/// two up to the default).
pub const SHARD_COUNTS: [usize; 3] = [2, 4, DEFAULT_SHARDS];

/// Hosts used to populate the routing check: enough nodes that every
/// shard ought to see traffic on a real rack.
const ROUTING_HOSTS: usize = 32;

/// Step 6: every `(DeviceType, event)` a metric consumes must route
/// deterministically, in range, and cover every shard across hosts.
fn check_shard_routing() -> Vec<String> {
    let mut errors = Vec::new();
    let mut keys: Vec<(String, SeriesKey)> = Vec::new();
    for id in MetricId::ALL {
        for &(device, event) in id.events() {
            for h in 0..ROUTING_HOSTS {
                let host = format!("c401-{h:04}");
                let key = SeriesKey::new(&host, device.name(), "dev0", event);
                keys.push((format!("{id:?} {device:?}/{event} on {host}"), key));
            }
        }
    }
    for n in SHARD_COUNTS {
        let mut hit: BTreeSet<usize> = BTreeSet::new();
        for (who, key) in &keys {
            let s = shard_of(key, n);
            if s >= n {
                errors.push(format!(
                    "conformance: shard_of({who}, {n}) = {s} is out of range"
                ));
            }
            if shard_of(key, n) != s {
                errors.push(format!(
                    "conformance: shard_of({who}, {n}) is not deterministic"
                ));
            }
            hit.insert(s);
        }
        if hit.len() != n {
            let missing: Vec<usize> = (0..n).filter(|s| !hit.contains(s)).collect();
            errors.push(format!(
                "conformance: shard routing over {} metric series keys \
                 leaves shards {missing:?} of {n} empty — the hash is not \
                 spreading series keys",
                keys.len()
            ));
        }
    }
    errors
}

/// Step 5: the accumulator's per-instance maps must be `Sym`-keyed.
fn check_interned_keys(source: &str) -> Vec<String> {
    let mut errors = Vec::new();
    if source.contains("(DeviceType, String)") {
        errors.push(format!(
            "conformance: {ACCUM_SRC} keys per-instance state by \
             (DeviceType, String) — use interned (DeviceType, Sym) keys \
             so the accumulate hot path stays allocation-free"
        ));
    }
    if !source.contains("(DeviceType, Sym)") {
        errors.push(format!(
            "conformance: {ACCUM_SRC} has no (DeviceType, Sym)-keyed \
             per-instance state — the accumulator is expected to key \
             previous-sample values by interned instance symbols"
        ));
    }
    errors
}

/// Validate one `(device, event)` consumption site against the schemas.
fn check_event(errors: &mut Vec<String>, who: String, device: DeviceType, event: &str) {
    let mut present_on = Vec::new();
    let mut missing_on = Vec::new();
    for arch in ARCHES {
        let schema = device.schema(arch);
        match schema.index_of(event) {
            Some(idx) => {
                present_on.push(arch);
                let unit = schema.events[idx].unit;
                let factor = unit.to_base();
                if !factor.is_finite() || factor <= 0.0 {
                    errors.push(format!(
                        "conformance: {who}: {device:?}/{event} has unit \
                         {unit:?} whose to_base() = {factor} is unusable"
                    ));
                }
            }
            None => missing_on.push(arch),
        }
    }
    if present_on.is_empty() {
        errors.push(format!(
            "conformance: {who}: event {device:?}/{event} exists in no \
             supported architecture's schema"
        ));
        return;
    }
    for arch in missing_on {
        let known = KNOWN_ARCH_GAPS
            .iter()
            .any(|&(a, d, e)| a == arch && d == device && e == event);
        if !known {
            errors.push(format!(
                "conformance: {who}: event {device:?}/{event} is missing on \
                 {arch:?} and is not a known arch-gated gap"
            ));
        }
    }
}

/// Extract `DeviceType::Xxx, "event"` pairs from source text. Only
/// pairs where the variant is directly followed by a comma and a string
/// literal are taken (match arms and `cum_of` calls); bare variant
/// mentions and wildcard arms are ignored.
pub fn extract_device_events(source: &str) -> Vec<(DeviceType, String)> {
    let needle = "DeviceType::";
    let mut out = Vec::new();
    let mut rest = source;
    while let Some(pos) = rest.find(needle) {
        rest = &rest[pos + needle.len()..];
        let variant: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let tail = rest[variant.len()..].trim_start();
        let Some(tail) = tail.strip_prefix(',') else {
            continue;
        };
        let tail = tail.trim_start();
        let Some(tail) = tail.strip_prefix('"') else {
            continue;
        };
        let Some(end) = tail.find('"') else { continue };
        let event = tail[..end].to_string();
        let Some(device) = DeviceType::ALL
            .into_iter()
            .find(|d| format!("{d:?}") == variant)
        else {
            continue;
        };
        out.push((device, event));
    }
    out.sort_by_key(|(d, e)| (format!("{d:?}"), e.clone()));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_match_arms_and_cum_of_calls() {
        let src = r#"
            match (rec.dev_type, name) {
                (DeviceType::Mdc, "reqs") => {}
                (DeviceType::Lnet, "tx_bytes") | (DeviceType::Lnet, "rx_bytes") => {}
                (DeviceType::Cpustat, _) => {}
                _ => {}
            }
            let x = self.cum_of(DeviceType::Mem, "MemUsed");
            let y = rec.dev_type == DeviceType::Ib;
        "#;
        let pairs = extract_device_events(src);
        assert!(pairs.contains(&(DeviceType::Mdc, "reqs".into())));
        assert!(pairs.contains(&(DeviceType::Lnet, "rx_bytes".into())));
        assert!(pairs.contains(&(DeviceType::Mem, "MemUsed".into())));
        assert!(!pairs.iter().any(|(d, _)| *d == DeviceType::Cpustat));
        assert!(!pairs.iter().any(|(d, _)| *d == DeviceType::Ib));
    }

    #[test]
    fn shard_routing_covers_all_counts() {
        let errs = check_shard_routing();
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn interned_key_check_flags_string_keys() {
        // Assembled at runtime so this fixture itself never matches a
        // source-tree sweep for the banned key type.
        let bad = format!(
            "prev: HashMap<(DeviceType, {}), (u64, Vec<u64>)>,",
            "String"
        );
        let errs = check_interned_keys(&bad);
        assert_eq!(errs.len(), 2, "{errs:?}"); // String key present, Sym key absent
        let good = "prev: HashMap<(DeviceType, Sym), (u64, Vec<u64>)>,";
        assert!(check_interned_keys(good).is_empty());
    }
}
