//! `cargo xtask` — workspace invariant checker for the TACC Stats
//! reproduction.
//!
//! Three families of checks, run by `cargo xtask lint`:
//!
//! * **panic-freedom** ([`panic_lint`]): the collection hot path
//!   (collect, broker, simnode) must not contain panic-capable
//!   constructs in non-test code, modulo a ratcheting allowlist that
//!   can only shrink;
//! * **schema ↔ metric conformance** ([`conformance`]): every event a
//!   Table I metric consumes must exist in a device schema with a
//!   usable unit conversion, and `MetricId::ALL` must be exhaustive;
//! * **wiring invariants** ([`invariants`]): the xtask alias, the
//!   loom-gated broker model suite, and the CI hooks stay in place.
//!
//! The checker runs as a plain workspace binary (the `xtask` pattern),
//! so it needs no external tooling and versions with the code it lints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod invariants;
pub mod lexer;
pub mod panic_lint;

use std::path::{Path, PathBuf};

/// Workspace root, assuming the canonical `crates/xtask` location.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Run every lint family against `root`. Returns all violations;
/// `Err` means a check could not run at all (missing file, bad
/// allowlist syntax), which is just as fatal.
pub fn run_lint(root: &Path) -> Result<Vec<String>, String> {
    let mut errors = Vec::new();
    errors.extend(panic_lint::check(root)?);
    errors.extend(conformance::check(root)?);
    errors.extend(invariants::check(root)?);
    Ok(errors)
}
