//! `cargo xtask` — workspace static-analysis suite for the TACC Stats
//! reproduction.
//!
//! Five passes, run by `cargo xtask lint` (DESIGN.md §13):
//!
//! 1. **lock-order** ([`lock_order`]): extract every `.lock()` /
//!    `.read()` / `.write()` acquisition across broker/simnode/tsdb,
//!    attribute each to a named lock class, and certify the
//!    may-hold-while-acquiring graph cycle-free;
//! 2. **alloc-lint** ([`alloc_lint`]): the modules benchmarked at
//!    0 allocs/op must not grow allocation constructs outside
//!    annotated cold sites;
//! 3. **crash-order** ([`crash_order`]): the WAL → segment → seal
//!    write order PR 6 proved dynamically is enforced syntactically;
//! 4. **panic-lint** ([`panic_lint`]): the collection hot path must
//!    not contain panic-capable constructs, modulo a ratchet;
//! 5. **conformance** ([`conformance`] + [`invariants`]): schema ↔
//!    metric agreement plus workspace wiring (CI jobs, loom gating,
//!    lock classes documented in DESIGN.md).
//!
//! The suite produces a unified [`report::LintReport`] with JSON
//! output for CI (`--json`) and ratchet regeneration
//! (`--fix-ratchet`). The checker runs as a plain workspace binary
//! (the `xtask` pattern), so it needs no external tooling and
//! versions with the code it lints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_lint;
pub mod conformance;
pub mod crash_order;
pub mod invariants;
pub mod lexer;
pub mod lock_order;
pub mod panic_lint;
pub mod report;
mod util;

use report::{LintReport, Pass};
use std::path::{Path, PathBuf};

/// Workspace root, assuming the canonical `crates/xtask` location.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Run the full five-pass suite against `root`. `Err` means a pass
/// could not run at all (missing file, bad allowlist syntax), which is
/// just as fatal as a violation.
pub fn run_report(root: &Path) -> Result<LintReport, String> {
    let mut passes = Vec::new();

    // Pass 1: lock-order.
    let (violations, analysis) = lock_order::check(root)?;
    let allowlisted: usize = lock_order::parse_allowlist(root)?.values().sum();
    let mut info = vec![
        format!("{} lock class(es)", analysis.classes.len()),
        format!("{} hold-while-acquiring edge(s)", analysis.edges.len()),
    ];
    info.extend(analysis.classes.iter().map(|c| format!("class {c}")));
    info.extend(
        analysis
            .edges
            .iter()
            .map(|(a, b)| format!("edge {a} → {b}")),
    );
    passes.push(Pass {
        name: "lock-order",
        files: count_files(root, lock_order::SCOPE)?,
        violations,
        allowlisted: allowlisted.min(analysis.unclassified.len()),
        annotated: 0,
        info,
    });

    // Pass 2: alloc-lint.
    let (violations, alloc) = alloc_lint::check(root)?;
    passes.push(Pass {
        name: "alloc-lint",
        files: count_files(root, alloc_lint::SCOPE)?,
        violations,
        allowlisted: 0,
        annotated: alloc.findings.iter().filter(|f| f.cold).count(),
        info: vec![format!(
            "{} allocation construct(s) found ({} annotated cold)",
            alloc.findings.len(),
            alloc.findings.iter().filter(|f| f.cold).count()
        )],
    });

    // Pass 3: crash-order.
    passes.push(Pass {
        name: "crash-order",
        files: count_files(root, crash_order::SCOPE)?,
        violations: crash_order::check(root)?,
        allowlisted: 0,
        annotated: 0,
        info: Vec::new(),
    });

    // Pass 4: panic-lint.
    passes.push(Pass {
        name: "panic-lint",
        files: count_files(root, panic_lint::SCOPE)?,
        violations: panic_lint::check(root)?,
        allowlisted: report::panic_allowance_total(root)?,
        annotated: 0,
        info: Vec::new(),
    });

    // Pass 5: conformance + wiring invariants (which consume the lock
    // classes pass 1 discovered).
    let mut violations = conformance::check(root)?;
    violations.extend(invariants::check(root, &analysis.classes)?);
    passes.push(Pass {
        name: "conformance",
        files: 0,
        violations,
        allowlisted: 0,
        annotated: 0,
        info: Vec::new(),
    });

    Ok(LintReport { passes })
}

/// Run every lint family against `root`, returning the flattened
/// violation list (the pre-report interface; the selftest and external
/// callers keep working).
pub fn run_lint(root: &Path) -> Result<Vec<String>, String> {
    Ok(run_report(root)?.violations())
}

fn count_files(root: &Path, scope: &[&str]) -> Result<usize, String> {
    Ok(util::walk_scope(root, scope, "lint")?.len())
}
