//! Shared helpers for the lint passes: scope walking and path
//! normalisation. Every pass sees the same workspace-relative,
//! `/`-separated path spelling, so allowlists and reports stay
//! portable across platforms.

use std::fs;
use std::path::Path;

/// Walk a lint scope (directories or single files, workspace-relative),
/// returning sorted workspace-relative `.rs` paths. Entries that do not
/// exist are skipped silently so passes run against the mini-workspaces
/// the test suite fabricates.
pub(crate) fn walk_scope(root: &Path, scope: &[&str], tag: &str) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    for dir in scope {
        let top = root.join(dir);
        if top.is_file() {
            files.push(relative(root, &top));
            continue;
        }
        if !top.is_dir() {
            continue;
        }
        let mut stack = vec![top];
        while let Some(d) = stack.pop() {
            let entries =
                fs::read_dir(&d).map_err(|e| format!("{tag}: read_dir {}: {e}", d.display()))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("{tag}: {e}"))?;
                let p = entry.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|x| x == "rs") {
                    files.push(relative(root, &p));
                }
            }
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

/// Workspace-relative `/`-separated path.
pub(crate) fn relative(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Read each scope file as `(rel_path, contents)`.
pub(crate) fn read_scope(
    root: &Path,
    scope: &[&str],
    tag: &str,
) -> Result<Vec<(String, String)>, String> {
    walk_scope(root, scope, tag)?
        .into_iter()
        .map(|rel| {
            let path = root.join(&rel);
            fs::read_to_string(&path)
                .map(|text| (rel, text))
                .map_err(|e| format!("{tag}: read {}: {e}", path.display()))
        })
        .collect()
}
