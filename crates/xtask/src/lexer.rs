//! A small comment/string-aware Rust scanner for the panic-freedom lint.
//!
//! `syn` is not vendorable offline, so this module does the minimum
//! lexical work the lint needs, directly on source text:
//!
//! 1. [`mask`] replaces the *interiors* of comments, string literals,
//!    and char literals with spaces (preserving byte offsets and line
//!    structure), so pattern scanning never fires inside prose or data.
//!    Doc comments are masked too, which conveniently excludes doc-test
//!    example code from the lint.
//! 2. [`excluded_spans`] finds `#[cfg(test)]` / `#[test]` items by
//!    attribute + brace matching, so test code may panic freely.
//! 3. [`scan`] pattern-matches the masked text for panic-capable
//!    constructs: `.unwrap()`, `.expect(...)`, panicking macros
//!    (`panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`
//!    and friends — `debug_assert*` is allowed, it compiles out of
//!    release builds), and unchecked indexing `expr[...]`.
//!
//! The scanner is deliberately conservative and syntactic: it can
//! over-approximate (flag an indexing that is actually infallible), and
//! the ratcheted allowlist in `panic_lint` absorbs the intentional
//! cases. It must never *under*-approximate on the constructs above.

use std::fmt;

/// What kind of panic-capable construct a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintKind {
    /// `.unwrap()` on Option/Result (or anything else).
    Unwrap,
    /// `.expect(...)`.
    Expect,
    /// A macro that panics in release builds: `panic!`, `unreachable!`,
    /// `todo!`, `unimplemented!`, `assert!`, `assert_eq!`, `assert_ne!`.
    PanicMacro,
    /// Unchecked indexing or slicing: `expr[...]`.
    Indexing,
}

impl LintKind {
    /// Stable key used in the allowlist file.
    pub fn key(self) -> &'static str {
        match self {
            LintKind::Unwrap => "unwrap",
            LintKind::Expect => "expect",
            LintKind::PanicMacro => "panic",
            LintKind::Indexing => "indexing",
        }
    }

    /// Parse an allowlist key.
    pub fn from_key(key: &str) -> Option<LintKind> {
        match key {
            "unwrap" => Some(LintKind::Unwrap),
            "expect" => Some(LintKind::Expect),
            "panic" => Some(LintKind::PanicMacro),
            "indexing" => Some(LintKind::Indexing),
            _ => None,
        }
    }
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One panic-capable construct found in non-test code.
#[derive(Clone, Debug)]
pub struct Finding {
    /// 1-based line number.
    pub line: usize,
    /// Construct kind.
    pub kind: LintKind,
    /// The source line, trimmed, for the report.
    pub excerpt: String,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Replace comment bodies and string/char literal interiors with
/// spaces. Delimiters (quotes) are kept; newlines are preserved so
/// line numbers survive masking. Handles line and nested block
/// comments, escapes, raw strings (`r"…"`, `r#"…"#`, byte/C-string
/// prefixes), raw identifiers (`r#match`), and the char-literal vs
/// lifetime ambiguity (`'a'` vs `<'a>`).
pub fn mask(source: &str) -> String {
    let chars: Vec<char> = source.chars().collect();
    let mut out: Vec<char> = chars.clone();
    let n = chars.len();
    let mut i = 0;
    let blank = |out: &mut Vec<char>, from: usize, to: usize| {
        for c in out.iter_mut().take(to).skip(from) {
            if *c != '\n' {
                *c = ' ';
            }
        }
    };
    while i < n {
        let c = chars[i];
        // Line comment (// /// //!): mask to end of line.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            blank(&mut out, start, i);
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut out, start, i);
            continue;
        }
        // Raw string / raw identifier, with optional b/c prefix. Only
        // when this `r`/`b`/`c` starts an identifier (prev not ident).
        if (c == 'r' || c == 'b' || c == 'c') && (i == 0 || !is_ident(chars[i - 1])) {
            // Longest prefix match among: r#*", br#*", cr#*", b", c", b'.
            let mut j = i + 1;
            let two = c == 'b' && j < n && chars[j] == 'r';
            if two {
                j += 1;
            }
            let raw = c == 'r' || two || (c == 'c' && j < n && chars[j] == 'r');
            if c == 'c' && j < n && chars[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0;
            while raw && j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if raw && hashes > 0 && j < n && chars[j] != '"' {
                // Raw identifier like r#match — skip the whole ident.
                while j < n && is_ident(chars[j]) {
                    j += 1;
                }
                i = j;
                continue;
            }
            if j < n && chars[j] == '"' && (raw || c != 'r') {
                // String body: for raw strings scan for `"###`; for
                // cooked strings honor escapes.
                let body = j + 1;
                let mut k = body;
                'string: while k < n {
                    if !raw && chars[k] == '\\' {
                        k += 2;
                        continue;
                    }
                    if chars[k] == '"' {
                        let mut h = 0;
                        while h < hashes && k + 1 + h < n && chars[k + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            break 'string;
                        }
                    }
                    k += 1;
                }
                blank(&mut out, body, k.min(n));
                i = (k + 1 + hashes).min(n);
                continue;
            }
            if c == 'b' && i + 1 < n && chars[i + 1] == '\'' {
                // Byte literal b'x'.
                let mut k = i + 2;
                if k < n && chars[k] == '\\' {
                    k += 1;
                }
                while k < n && chars[k] != '\'' {
                    k += 1;
                }
                blank(&mut out, i + 2, k);
                i = (k + 1).min(n);
                continue;
            }
            // Plain identifier starting with r/b/c — fall through.
        }
        // Cooked string with no prefix.
        if c == '"' {
            let mut k = i + 1;
            while k < n {
                if chars[k] == '\\' {
                    k += 2;
                    continue;
                }
                if chars[k] == '"' {
                    break;
                }
                k += 1;
            }
            blank(&mut out, i + 1, k.min(n));
            i = (k + 1).min(n);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                let mut k = i + 2;
                if k < n {
                    k += 1; // escaped char (or first of \x/\u sequence)
                }
                while k < n && chars[k] != '\'' {
                    k += 1;
                }
                blank(&mut out, i + 1, k);
                i = (k + 1).min(n);
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                blank(&mut out, i + 1, i + 2);
                i += 3;
                continue;
            }
            // Lifetime: skip the quote, the label lexes as an ident.
            i += 1;
            continue;
        }
        // Skip whole identifiers so `brr` or `cfg` never half-matches a
        // prefix rule above.
        if is_ident(c) {
            while i < n && is_ident(chars[i]) {
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    out.into_iter().collect()
}

/// Keywords that may directly precede `[` without it being an index
/// expression (array literals, patterns, types).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
    "yield", "await",
];

/// Spans of masked text (byte ranges over the char vector) belonging to
/// `#[cfg(test)]` / `#[test]` items, where panics are fine.
pub fn excluded_spans(masked: &str) -> Vec<(usize, usize)> {
    let chars: Vec<char> = masked.chars().collect();
    let n = chars.len();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < n {
        if chars[i] != '#' || i + 1 >= n || chars[i + 1] != '[' {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Collect the attribute text up to the matching `]`.
        let mut depth = 0;
        let mut j = i + 1;
        let mut attr = String::new();
        while j < n {
            match chars[j] {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            attr.push(chars[j]);
            j += 1;
        }
        let is_test_attr = {
            let a: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
            a == "[test"
                || (a.starts_with("[cfg(") && has_word(&a, "test") && !a.contains("not(test"))
        };
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further stacked attributes and whitespace, then span
        // the following item: to its `;`, or through its `{ … }` block.
        let mut k = j + 1;
        loop {
            while k < n && chars[k].is_whitespace() {
                k += 1;
            }
            if k + 1 < n && chars[k] == '#' && chars[k + 1] == '[' {
                let mut d = 0;
                while k < n {
                    match chars[k] {
                        '[' => d += 1,
                        ']' => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                k += 1;
                continue;
            }
            break;
        }
        let mut end = k;
        while end < n && chars[end] != '{' && chars[end] != ';' {
            end += 1;
        }
        if end < n && chars[end] == '{' {
            let mut d = 0;
            while end < n {
                match chars[end] {
                    '{' => d += 1,
                    '}' => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
        }
        spans.push((attr_start, (end + 1).min(n)));
        i = (end + 1).min(n);
    }
    spans
}

fn has_word(haystack: &str, word: &str) -> bool {
    let h: Vec<char> = haystack.chars().collect();
    let w: Vec<char> = word.chars().collect();
    if w.is_empty() || h.len() < w.len() {
        return false;
    }
    for start in 0..=h.len() - w.len() {
        if h[start..start + w.len()] != w[..] {
            continue;
        }
        let before_ok = start == 0 || !is_ident(h[start - 1]);
        let after = start + w.len();
        let after_ok = after == h.len() || !is_ident(h[after]);
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Scan Rust source text for panic-capable constructs outside test
/// code. Returns findings ordered by position.
pub fn scan(source: &str) -> Vec<Finding> {
    let masked = mask(source);
    let chars: Vec<char> = masked.chars().collect();
    let n = chars.len();
    let excluded = excluded_spans(&masked);
    let in_excluded = |pos: usize| excluded.iter().any(|&(a, b)| pos >= a && pos < b);
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            chars
                .iter()
                .enumerate()
                .filter(|(_, c)| **c == '\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let line_of = |pos: usize| match line_starts.binary_search(&pos) {
        Ok(l) => l + 1,
        Err(l) => l,
    };
    let excerpt_of = |pos: usize| {
        let line = line_of(pos);
        source
            .lines()
            .nth(line - 1)
            .unwrap_or("")
            .trim()
            .to_string()
    };
    let next_nonws = |from: usize| {
        let mut k = from;
        while k < n && chars[k].is_whitespace() {
            k += 1;
        }
        (k < n).then(|| chars[k])
    };
    let prev_nonws = |from: usize| {
        let mut k = from;
        while k > 0 {
            k -= 1;
            if !chars[k].is_whitespace() {
                return Some((k, chars[k]));
            }
        }
        None
    };

    let mut findings = Vec::new();
    let mut i = 0;
    while i < n {
        let c = chars[i];
        if is_ident(c) && (i == 0 || !is_ident(chars[i - 1])) && !c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < n && is_ident(chars[j]) {
                j += 1;
            }
            let word: String = chars[start..j].iter().collect();
            let kind = match word.as_str() {
                "unwrap" | "expect" => {
                    let dotted = prev_nonws(start).map(|(_, p)| p) == Some('.');
                    let called = next_nonws(j) == Some('(');
                    (dotted && called).then(|| {
                        if word == "unwrap" {
                            LintKind::Unwrap
                        } else {
                            LintKind::Expect
                        }
                    })
                }
                "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
                | "assert_ne" => (j < n && chars[j] == '!').then_some(LintKind::PanicMacro),
                _ => None,
            };
            if let Some(kind) = kind {
                if !in_excluded(start) {
                    findings.push(Finding {
                        line: line_of(start),
                        kind,
                        excerpt: excerpt_of(start),
                    });
                }
            }
            i = j;
            continue;
        }
        if c == '[' && !in_excluded(i) {
            if let Some((p, pc)) = prev_nonws(i) {
                let indexing = if pc == ')' || pc == ']' || pc == '?' {
                    true
                } else if is_ident(pc) {
                    let mut s = p;
                    while s > 0 && is_ident(chars[s - 1]) {
                        s -= 1;
                    }
                    let word: String = chars[s..=p].iter().collect();
                    // A lifetime before `[` (`&'a [u8]`) is slice type
                    // syntax, not indexing.
                    let is_lifetime = s > 0 && chars[s - 1] == '\'';
                    !is_lifetime
                        && !NON_INDEX_KEYWORDS.contains(&word.as_str())
                        && !word.chars().next().is_some_and(|c| c.is_ascii_digit())
                } else {
                    false
                };
                if indexing {
                    findings.push(Finding {
                        line: line_of(i),
                        kind: LintKind::Indexing,
                        excerpt: excerpt_of(i),
                    });
                }
            }
        }
        i += 1;
    }
    findings
}

// ---------------------------------------------------------------------
// Method-call-chain and item extraction (lock-order / crash-order passes)
// ---------------------------------------------------------------------

/// Line lookup over a (masked) char stream.
pub struct Lines {
    starts: Vec<usize>,
}

impl Lines {
    /// Index `text` (char offsets, matching the scanners here).
    pub fn new(text: &str) -> Lines {
        let starts = std::iter::once(0)
            .chain(
                text.chars()
                    .enumerate()
                    .filter(|(_, c)| *c == '\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        Lines { starts }
    }

    /// 1-based line containing char offset `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.starts.binary_search(&pos) {
            Ok(l) => l + 1,
            Err(l) => l,
        }
    }
}

/// One segment of a method-call receiver chain, outermost first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainSeg {
    /// Identifier text (`self`, a field, a called method, a static,
    /// possibly a `Path::seg` for path calls).
    pub name: String,
    /// The segment is itself a call: `shard(key)` in
    /// `self.shard(key).data.read()`.
    pub called: bool,
    /// The segment is indexed: `counters[i]`.
    pub indexed: bool,
}

/// A `.method(...)` call site with its receiver chain attributed.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Char offset of the method identifier in the masked text.
    pub pos: usize,
    /// Char offset where the receiver chain begins (statement lookback
    /// for `let`-binding detection starts here).
    pub chain_start: usize,
    /// 1-based line of the method identifier.
    pub line: usize,
    /// Method name.
    pub method: String,
    /// Receiver chain, outermost-first. May be empty or truncated when
    /// the receiver starts at a parenthesised expression the lexer
    /// cannot attribute.
    pub chain: Vec<ChainSeg>,
}

/// Find `.m(...)` call sites for every `m` in `methods`, walking each
/// receiver chain backwards into field/call/index segments. With
/// `empty_args_only`, only zero-argument calls match (the shape of
/// `.lock()` / `.read()` / `.write()` guard acquisitions).
pub fn method_call_sites(masked: &str, methods: &[&str], empty_args_only: bool) -> Vec<CallSite> {
    let chars: Vec<char> = masked.chars().collect();
    let n = chars.len();
    let lines = Lines::new(masked);
    let mut sites = Vec::new();
    let next_nonws = |from: usize| {
        let mut k = from;
        while k < n && chars[k].is_whitespace() {
            k += 1;
        }
        (k < n).then_some(k)
    };
    let prev_nonws = |from: usize| {
        let mut k = from;
        while k > 0 {
            k -= 1;
            if !chars[k].is_whitespace() {
                return Some(k);
            }
        }
        None
    };
    // Walk back across a balanced group ending at `close` (a `)` or
    // `]`); returns the offset of the opener, or None if unbalanced.
    let balance_back = |close: usize| -> Option<usize> {
        let (open_c, close_c) = match chars.get(close) {
            Some(')') => ('(', ')'),
            Some(']') => ('[', ']'),
            _ => return None,
        };
        let mut depth = 0usize;
        let mut k = close + 1;
        while k > 0 {
            k -= 1;
            if chars[k] == close_c {
                depth += 1;
            } else if chars[k] == open_c {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
        None
    };
    // Scan back over `ident` ending at `end` (inclusive); returns start.
    let ident_start = |end: usize| -> usize {
        let mut s = end;
        while s > 0 && is_ident(chars[s - 1]) {
            s -= 1;
        }
        s
    };

    let mut i = 0;
    while i < n {
        let c = chars[i];
        if !is_ident(c) || c.is_ascii_digit() || (i != 0 && is_ident(chars[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i;
        while j < n && is_ident(chars[j]) {
            j += 1;
        }
        i = j;
        let word: String = chars[start..j].iter().collect();
        if !methods.iter().any(|m| *m == word) {
            continue;
        }
        let Some(dot) = prev_nonws(start).filter(|&p| chars[p] == '.') else {
            continue;
        };
        let Some(open) = next_nonws(j).filter(|&p| chars[p] == '(') else {
            continue;
        };
        if empty_args_only && next_nonws(open + 1).map(|p| chars[p]) != Some(')') {
            continue;
        }
        // Walk the receiver chain backwards from the dot.
        let mut rev: Vec<ChainSeg> = Vec::new();
        let mut chain_start = start;
        let mut at = dot; // offset of the `.` to the left of the next segment
        while let Some(p) = prev_nonws(at) {
            match chars[p] {
                '?' => {
                    // `foo()?.lock()` — transparent postfix.
                    at = p;
                }
                ')' | ']' => {
                    let grouped = chars[p] == ')';
                    let Some(opener) = balance_back(p) else { break };
                    chain_start = opener;
                    let Some(q) = prev_nonws(opener).filter(|&q| is_ident(chars[q])) else {
                        break; // `(expr).lock()` — unattributable start
                    };
                    let s = ident_start(q);
                    let mut name: String = chars[s..=q].iter().collect();
                    chain_start = s;
                    // Fold a `Path::call()` prefix into the segment name.
                    let mut before = prev_nonws(s);
                    while grouped
                        && before.is_some_and(|b| b > 0 && chars[b] == ':' && chars[b - 1] == ':')
                    {
                        let b = before.unwrap_or(0);
                        match prev_nonws(b - 1).filter(|&q2| is_ident(chars[q2])) {
                            Some(q2) => {
                                let s2 = ident_start(q2);
                                let prefix: String = chars[s2..=q2].iter().collect();
                                name = format!("{prefix}::{name}");
                                chain_start = s2;
                                before = prev_nonws(s2);
                            }
                            None => break,
                        }
                    }
                    rev.push(ChainSeg {
                        name,
                        called: grouped,
                        indexed: !grouped,
                    });
                    match before {
                        Some(b) if chars[b] == '.' => at = b,
                        _ => break,
                    }
                }
                ch if is_ident(ch) => {
                    let s = ident_start(p);
                    let name: String = chars[s..=p].iter().collect();
                    chain_start = s;
                    rev.push(ChainSeg {
                        name,
                        called: false,
                        indexed: false,
                    });
                    match prev_nonws(s) {
                        Some(b) if chars[b] == '.' => at = b,
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        rev.reverse();
        sites.push(CallSite {
            pos: start,
            chain_start,
            line: lines.line_of(start),
            method: word,
            chain: rev,
        });
    }
    sites
}

/// A `fn` item located in masked source.
#[derive(Clone, Debug)]
pub struct ItemFn {
    /// Function name.
    pub name: String,
    /// Type of the enclosing `impl` block, if any (for trait impls,
    /// the implementing type after `for`).
    pub impl_type: Option<String>,
    /// Char offset of the `fn` keyword.
    pub start: usize,
    /// Char span of the `{ … }` body (inclusive of both braces), or
    /// `start..start` for bodyless trait-method declarations.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

impl ItemFn {
    /// True if `pos` falls inside this function's body.
    pub fn contains(&self, pos: usize) -> bool {
        pos > self.body.0 && pos < self.body.1
    }
}

/// Locate every `fn` item (with enclosing-impl attribution) in masked
/// source. Nested functions are reported too; pick the innermost
/// containing span when attributing a position.
pub fn item_fns(masked: &str) -> Vec<ItemFn> {
    let chars: Vec<char> = masked.chars().collect();
    let n = chars.len();
    let lines = Lines::new(masked);

    // Pass 1: impl spans. `impl<G> Path<G> { … }` / `impl T for U { … }`.
    let mut impls: Vec<(String, usize, usize)> = Vec::new();
    let mut i = 0;
    while i < n {
        if !(is_ident(chars[i]) && (i == 0 || !is_ident(chars[i - 1]))) {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i;
        while j < n && is_ident(chars[j]) {
            j += 1;
        }
        let word: String = chars[start..j].iter().collect();
        i = j;
        if word != "impl" {
            continue;
        }
        // Read to the opening brace, remembering the last path ident
        // seen outside generic args; `for` resets it (trait impls name
        // the implementing type after `for`).
        let mut k = j;
        let mut angle = 0i32;
        let mut last_ident = String::new();
        while k < n && chars[k] != '{' && chars[k] != ';' {
            let c = chars[k];
            if c == '<' {
                angle += 1;
                k += 1;
            } else if c == '>' {
                if k > 0 && chars[k - 1] != '-' {
                    angle -= 1;
                }
                k += 1;
            } else if is_ident(c) && !c.is_ascii_digit() {
                let s = k;
                while k < n && is_ident(chars[k]) {
                    k += 1;
                }
                let w: String = chars[s..k].iter().collect();
                if angle == 0 {
                    if w == "for" || w == "where" {
                        last_ident.clear();
                    } else {
                        last_ident = w;
                    }
                }
            } else {
                k += 1;
            }
        }
        if k < n && chars[k] == '{' {
            let mut d = 0i32;
            let mut e = k;
            while e < n {
                match chars[e] {
                    '{' => d += 1,
                    '}' => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                e += 1;
            }
            if !last_ident.is_empty() {
                impls.push((last_ident, k, e.min(n)));
            }
            // Continue scanning *inside* the impl for nested items.
            i = k + 1;
        } else {
            i = k;
        }
    }

    // Pass 2: fn items.
    let mut fns = Vec::new();
    let mut i = 0;
    while i < n {
        if !(is_ident(chars[i]) && (i == 0 || !is_ident(chars[i - 1]))) {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i;
        while j < n && is_ident(chars[j]) {
            j += 1;
        }
        let word: String = chars[start..j].iter().collect();
        i = j;
        if word != "fn" {
            continue;
        }
        // Name (absent for `fn(…)` pointer types).
        let mut k = j;
        while k < n && chars[k].is_whitespace() {
            k += 1;
        }
        if k >= n || !is_ident(chars[k]) || chars[k].is_ascii_digit() {
            continue;
        }
        let ns = k;
        while k < n && is_ident(chars[k]) {
            k += 1;
        }
        let name: String = chars[ns..k].iter().collect();
        // Skip to the body `{` (or `;`), tracking paren/bracket/angle
        // depth so braces in where-clauses or closures in default args
        // don't fool us (`->` is not an angle close).
        let (mut paren, mut brack, mut angle) = (0i32, 0i32, 0i32);
        while k < n {
            match chars[k] {
                '(' => paren += 1,
                ')' => paren -= 1,
                '[' => brack += 1,
                ']' => brack -= 1,
                '<' => angle += 1,
                '>' if k > 0 && chars[k - 1] != '-' => {
                    angle -= 1;
                }
                '{' if paren == 0 && brack == 0 && angle <= 0 => break,
                ';' if paren == 0 && brack == 0 => {
                    k = n + 1; // bodyless declaration
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let body = if k < n {
            let mut d = 0i32;
            let mut e = k;
            while e < n {
                match chars[e] {
                    '{' => d += 1,
                    '}' => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                e += 1;
            }
            (k, e.min(n))
        } else {
            (start, start)
        };
        let impl_type = impls
            .iter()
            .filter(|(_, s, e)| start > *s && start < *e)
            .min_by_key(|(_, s, e)| e - s)
            .map(|(t, _, _)| t.clone());
        fns.push(ItemFn {
            name,
            impl_type,
            start,
            body,
            line: lines.line_of(start),
        });
        i = body.0.max(start) + 1;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"unwrap()\"; // .unwrap()\n/* panic! */ let y = 1;";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(m.contains("let y = 1;"));
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let m = mask("let s = r#\"a.unwrap()\"#; let c = 'x'; let l: &'a str = s;");
        assert!(!m.contains("unwrap"));
        assert!(m.contains("&'a str"), "{m}");
    }

    #[test]
    fn finds_unwrap_expect_macros_indexing() {
        let src = "fn f(v: Vec<u8>) {\n    let a = v.first().unwrap();\n    let b = v.iter().next().expect(\"x\");\n    panic!(\"boom\");\n    let c = v[0];\n    debug_assert!(c > 0);\n}\n";
        let kinds: Vec<LintKind> = scan(src).iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            vec![
                LintKind::Unwrap,
                LintKind::Expect,
                LintKind::PanicMacro,
                LintKind::Indexing
            ]
        );
    }

    #[test]
    fn skips_test_code_and_doc_tests() {
        let src = "/// ```\n/// x.unwrap();\n/// ```\nfn ok() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn array_literals_and_attributes_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn g() -> [u8; 2] {\n    let a = [1u8, 2];\n    let v = vec![1, 2];\n    let _ = (a, v);\n    [0, 1]\n}\n";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn lifetime_slice_types_are_not_indexing() {
        let src = "struct C<'a> {\n    ts: &'a [u8],\n    vs: &'a [u8],\n}\nfn f<'b>(x: &'b [u64]) -> &'b [u64] { x }\n";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn chained_and_slice_indexing_found() {
        let src =
            "fn h(m: Vec<Vec<u8>>, s: &str) {\n    let _ = m[0][1];\n    let _ = &s[1..];\n}\n";
        let kinds: Vec<LintKind> = scan(src).iter().map(|f| f.kind).collect();
        assert_eq!(kinds.len(), 3, "{:?}", scan(src));
        assert!(kinds.iter().all(|k| *k == LintKind::Indexing));
    }

    fn chain_names(site: &CallSite) -> Vec<&str> {
        site.chain.iter().map(|s| s.name.as_str()).collect()
    }

    #[test]
    fn lines_maps_offsets_to_one_based_lines() {
        let l = Lines::new("ab\ncd\n");
        assert_eq!(l.line_of(0), 1);
        assert_eq!(l.line_of(2), 1);
        assert_eq!(l.line_of(3), 2);
        assert_eq!(l.line_of(5), 2);
    }

    #[test]
    fn call_sites_walk_field_chains_and_chained_continuations() {
        let src = "impl S {\n    fn f(&self, k: u64) {\n        let hit = self.cache.lock().get(k);\n        self.shard(k).data.read();\n    }\n}\n";
        let masked = mask(src);
        let sites = method_call_sites(&masked, &["lock", "read"], true);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert_eq!(sites[0].method, "lock");
        assert_eq!(sites[0].line, 3);
        assert_eq!(chain_names(&sites[0]), ["self", "cache"]);
        assert_eq!(sites[1].method, "read");
        assert_eq!(chain_names(&sites[1]), ["self", "shard", "data"]);
        assert!(sites[1].chain[1].called, "shard(k) is a call segment");
    }

    #[test]
    fn empty_args_only_skips_non_guard_reads() {
        let src = "fn f(c: &Counter, st: &Mutex<u8>) {\n    c.read(\"user\");\n    st.lock();\n}\n";
        let masked = mask(src);
        let guards = method_call_sites(&masked, &["lock", "read"], true);
        assert_eq!(guards.len(), 1, "{guards:?}");
        assert_eq!(guards[0].method, "lock");
        let all = method_call_sites(&masked, &["lock", "read"], false);
        assert_eq!(all.len(), 2, "{all:?}");
    }

    #[test]
    fn call_sites_found_in_closures_and_match_arms() {
        let src = "fn f(x: Option<u8>) {\n    let g = || m.lock();\n    match x {\n        Some(_) => n.lock(),\n        None => {}\n    }\n    g();\n}\n";
        let masked = mask(src);
        let sites = method_call_sites(&masked, &["lock"], true);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert_eq!(chain_names(&sites[0]), ["m"]);
        assert_eq!(chain_names(&sites[1]), ["n"]);
    }

    #[test]
    fn indexed_receivers_and_parenthesised_receivers() {
        let src = "fn f(&self) {\n    self.counters[i].read();\n    (a + b).lock();\n}\n";
        let masked = mask(src);
        let sites = method_call_sites(&masked, &["lock", "read"], true);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert_eq!(chain_names(&sites[0]), ["self", "counters"]);
        assert!(sites[0].chain[1].indexed, "counters[i] is indexed");
        // A parenthesised-expression receiver is unattributable: the
        // chain is empty rather than wrong.
        assert_eq!(sites[1].method, "lock");
        assert!(sites[1].chain.is_empty(), "{:?}", sites[1].chain);
    }

    #[test]
    fn item_fns_attribute_impl_types_and_spans() {
        let src = "struct S;\nimpl S {\n    fn a(&self) -> Result<Vec<u8>, ()> {\n        body();\n    }\n}\nimpl Other for S {\n    fn b(&self) {}\n}\nfn free() {}\n";
        let masked = mask(src);
        let fns = item_fns(&masked);
        assert_eq!(fns.len(), 3, "{fns:?}");
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[0].impl_type.as_deref(), Some("S"));
        assert_eq!(fns[1].name, "b");
        assert_eq!(
            fns[1].impl_type.as_deref(),
            Some("S"),
            "trait impls attribute to the implementing type"
        );
        assert_eq!(fns[2].name, "free");
        assert_eq!(fns[2].impl_type, None);
        // The body span of `a` contains the `body()` call.
        let call = masked.find("body").unwrap();
        assert!(fns[0].contains(call));
        assert!(!fns[1].contains(call));
    }
}
