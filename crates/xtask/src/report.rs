//! Unified `LintReport` for the five-pass suite, with machine-readable
//! JSON output for CI (hand-rolled serialisation — xtask stays
//! dependency-free) and `--fix-ratchet` allowlist regeneration.

use crate::{lock_order, panic_lint};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One pass's outcome.
pub struct Pass {
    /// Pass name (`lock-order`, `alloc-lint`, `crash-order`,
    /// `panic-lint`, `conformance`).
    pub name: &'static str,
    /// Files scanned (0 for wiring-style passes that read fixed files).
    pub files: usize,
    /// Violations — non-empty fails the build.
    pub violations: Vec<String>,
    /// Findings excused by a ratchet allowlist.
    pub allowlisted: usize,
    /// Findings excused by an in-source annotation.
    pub annotated: usize,
    /// Informational lines (lock classes, edges, …).
    pub info: Vec<String>,
}

/// The whole suite's outcome.
pub struct LintReport {
    /// Per-pass results, in run order.
    pub passes: Vec<Pass>,
}

impl LintReport {
    /// All violations across passes, in pass order.
    pub fn violations(&self) -> Vec<String> {
        self.passes
            .iter()
            .flat_map(|p| p.violations.iter().cloned())
            .collect()
    }

    /// One summary line per pass (for terminal output).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for p in &self.passes {
            let _ = writeln!(
                out,
                "  {:<12} {:>3} file(s)  {:>2} violation(s)  {:>2} allowlisted  {:>2} annotated",
                p.name,
                p.files,
                p.violations.len(),
                p.allowlisted,
                p.annotated,
            );
        }
        out
    }

    /// Serialise for CI artifacts.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"passes\": [\n");
        for (i, p) in self.passes.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": {}, \"files\": {}, \"violations\": [",
                json_str(p.name),
                p.files
            );
            for (j, v) in p.violations.iter().enumerate() {
                let _ = write!(s, "{}{}", if j > 0 { ", " } else { "" }, json_str(v));
            }
            let _ = write!(
                s,
                "], \"allowlisted\": {}, \"annotated\": {}, \"info\": [",
                p.allowlisted, p.annotated
            );
            for (j, v) in p.info.iter().enumerate() {
                let _ = write!(s, "{}{}", if j > 0 { ", " } else { "" }, json_str(v));
            }
            let _ = writeln!(s, "]}}{}", if i + 1 < self.passes.len() { "," } else { "" });
        }
        let total: usize = self.passes.iter().map(|p| p.violations.len()).sum();
        let _ = write!(s, "  ],\n  \"total_violations\": {total}\n}}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Rewrite both ratchet files to current finding counts. Allowances
/// only ever *shrink*: a count above the current allowance is a
/// violation to fix in source, not a ratchet to loosen, so it is left
/// for the lint to report. Zero-count entries are dropped.
pub fn fix_ratchets(root: &Path) -> Result<Vec<String>, String> {
    let mut changed = Vec::new();

    // Panic lint: `<path> <kind> <count>`.
    {
        let old = panic_lint::parse_allowlist(root)?;
        let actual = panic_lint::actual_counts(root)?;
        let mut lines: Vec<String> = Vec::new();
        for ((file, kind), allowance) in &old {
            let found = actual.get(&(file.clone(), *kind)).copied().unwrap_or(0);
            let new = (*allowance).min(found);
            if new > 0 {
                lines.push(format!("{file} {} {new}", kind.key()));
            }
        }
        write_ratchet(
            root,
            panic_lint::ALLOWLIST,
            "# Panic-lint ratchet: `<path> <kind> <count>`. Counts only shrink;\n\
             # regenerate with `cargo xtask lint --fix-ratchet` after cleanups.\n\
             # Kinds: unwrap | expect | panic | indexing. The delivery-critical\n\
             # modules (collect::{daemon,spool,consumer,codec}, broker::{queue,tcp},\n\
             # the interner, tsdb::{block,shard}, the worker pool) are deny-listed\n\
             # by the lint itself and may never appear here. Every allowance below\n\
             # is simulator-internal (crates/simnode): constructor contract asserts\n\
             # and schema-derived lookups where a violation is a logic bug in the\n\
             # simulation, not a monitoring outage.",
            &lines,
            &mut changed,
        )?;
    }

    // Lock-order: `<path> <count>` of unclassifiable sites.
    {
        let old = lock_order::parse_allowlist(root)?;
        let analysis = lock_order::analyze(root)?;
        let mut actual: BTreeMap<String, usize> = BTreeMap::new();
        for (rel, _, _) in &analysis.unclassified {
            *actual.entry(rel.clone()).or_insert(0) += 1;
        }
        let mut lines: Vec<String> = Vec::new();
        for (file, allowance) in &old {
            let new = (*allowance).min(actual.get(file).copied().unwrap_or(0));
            if new > 0 {
                lines.push(format!("{file} {new}"));
            }
        }
        write_ratchet(
            root,
            lock_order::ALLOWLIST,
            "# Lock-order ratchet: `<path> <count>` of acquisition sites the\n\
             # analyzer cannot attribute to a lock class. Prefer annotating the\n\
             # site (`// lock-order: class=<Class>`); counts only shrink.",
            &lines,
            &mut changed,
        )?;
    }

    Ok(changed)
}

fn write_ratchet(
    root: &Path,
    rel: &str,
    header: &str,
    lines: &[String],
    changed: &mut Vec<String>,
) -> Result<(), String> {
    let mut text = String::from(header);
    text.push('\n');
    for l in lines {
        text.push_str(l);
        text.push('\n');
    }
    let path = root.join(rel);
    let old = std::fs::read_to_string(&path).unwrap_or_default();
    if old != text {
        std::fs::write(&path, &text).map_err(|e| format!("write {}: {e}", path.display()))?;
        changed.push(rel.to_string());
    }
    Ok(())
}

/// Total allowance currently granted by the panic-lint ratchet.
pub fn panic_allowance_total(root: &Path) -> Result<usize, String> {
    Ok(panic_lint::parse_allowlist(root)?.values().sum())
}
