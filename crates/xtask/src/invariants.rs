//! Workspace wiring invariants.
//!
//! These checks keep the verification infrastructure itself from
//! rotting: the `cargo xtask` alias must stay wired, the loom model
//! suites (broker queue, worker pool, tsdb shard) must stay
//! loom-gated (so plain `cargo test` is unaffected) and reachable
//! from CI along with the parallel-path bench, and every loom-using
//! crate must keep rustc's `unexpected_cfgs` lint taught about
//! `cfg(loom)` (CI runs clippy with `-D warnings`).

use crate::{alloc_lint, panic_lint};
use std::fs;
use std::path::Path;

/// Run the wiring checks. `lock_classes` is the lock-order analyzer's
/// discovered class set — every class must be documented in
/// DESIGN.md's concurrency section. Returns violations (empty = pass).
pub fn check(root: &Path, lock_classes: &[String]) -> Result<Vec<String>, String> {
    let mut errors = Vec::new();
    let mut expect = |rel: &str, needles: &[&str]| -> Result<(), String> {
        let path = root.join(rel);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("invariants: read {}: {e}", path.display()))?;
        for needle in needles {
            if !text.contains(needle) {
                errors.push(format!("invariants: {rel} must contain `{needle}`"));
            }
        }
        Ok(())
    };

    expect(
        ".cargo/config.toml",
        &["xtask = \"run --quiet --package xtask --\""],
    )?;
    expect(
        "crates/broker/tests/loom_queue.rs",
        &["#![cfg(loom)]", "loom::model"],
    )?;
    expect(
        "crates/simnode/tests/loom_pool.rs",
        &["#![cfg(loom)]", "loom::model"],
    )?;
    expect(
        "crates/tsdb/tests/loom_shard.rs",
        &["#![cfg(loom)]", "loom::model"],
    )?;
    expect("crates/broker/Cargo.toml", &["check-cfg = [\"cfg(loom)\"]"])?;
    expect(
        "crates/simnode/Cargo.toml",
        &["check-cfg = [\"cfg(loom)\"]"],
    )?;
    expect("crates/tsdb/Cargo.toml", &["check-cfg = [\"cfg(loom)\"]"])?;
    expect(
        ".github/workflows/ci.yml",
        &[
            "cargo xtask lint",
            "--cfg loom",
            "--test loom_pool",
            "--test loom_shard",
            "--bench parallel_path",
            "BENCH_parallel_path.json",
            "--bench stream_path",
            "BENCH_stream_path.json",
            // The five-pass suite must stay a required CI job with its
            // JSON artifact, and the TSan job is the lock-order pass's
            // dynamic cross-check.
            "xtask-lint",
            "lint-report.json",
            "-Zsanitizer=thread",
        ],
    )?;

    // Every tsdb module whose panic allowance is pinned to zero is also
    // a 0 allocs/op module: the panic DENY list marks the code that
    // must keep running while the disk fails, and that same code is
    // the storage hot path.
    for deny in panic_lint::DENY {
        if deny.starts_with("crates/tsdb/") && !alloc_lint::SCOPE.contains(deny) {
            errors.push(format!(
                "invariants: {deny} is panic-lint DENY but not covered by the \
                 allocation lint — add it to alloc_lint::SCOPE"
            ));
        }
    }

    // Every lock class the analyzer discovers must be documented in the
    // `### Lock classes` table of DESIGN.md's static-analysis section.
    {
        let rel = "DESIGN.md";
        let path = root.join(rel);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("invariants: read {}: {e}", path.display()))?;
        match text.find("### Lock classes") {
            None => errors.push(format!(
                "invariants: {rel} must contain a `### Lock classes` section"
            )),
            Some(at) => {
                let section = &text[at..];
                let section = section
                    .find("\n## ")
                    .map(|end| &section[..end])
                    .unwrap_or(section);
                for class in lock_classes {
                    if !section.contains(class.as_str()) {
                        errors.push(format!(
                            "invariants: lock class `{class}` is not documented in \
                             {rel}'s `### Lock classes` section"
                        ));
                    }
                }
            }
        }
    }
    Ok(errors)
}
