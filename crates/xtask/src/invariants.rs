//! Workspace wiring invariants.
//!
//! These checks keep the verification infrastructure itself from
//! rotting: the `cargo xtask` alias must stay wired, the loom model
//! suites (broker queue, worker pool, tsdb shard) must stay
//! loom-gated (so plain `cargo test` is unaffected) and reachable
//! from CI along with the parallel-path bench, and every loom-using
//! crate must keep rustc's `unexpected_cfgs` lint taught about
//! `cfg(loom)` (CI runs clippy with `-D warnings`).

use std::fs;
use std::path::Path;

/// Run the wiring checks. Returns violations (empty = pass).
pub fn check(root: &Path) -> Result<Vec<String>, String> {
    let mut errors = Vec::new();
    let mut expect = |rel: &str, needles: &[&str]| -> Result<(), String> {
        let path = root.join(rel);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("invariants: read {}: {e}", path.display()))?;
        for needle in needles {
            if !text.contains(needle) {
                errors.push(format!("invariants: {rel} must contain `{needle}`"));
            }
        }
        Ok(())
    };

    expect(
        ".cargo/config.toml",
        &["xtask = \"run --quiet --package xtask --\""],
    )?;
    expect(
        "crates/broker/tests/loom_queue.rs",
        &["#![cfg(loom)]", "loom::model"],
    )?;
    expect(
        "crates/simnode/tests/loom_pool.rs",
        &["#![cfg(loom)]", "loom::model"],
    )?;
    expect(
        "crates/tsdb/tests/loom_shard.rs",
        &["#![cfg(loom)]", "loom::model"],
    )?;
    expect("crates/broker/Cargo.toml", &["check-cfg = [\"cfg(loom)\"]"])?;
    expect(
        "crates/simnode/Cargo.toml",
        &["check-cfg = [\"cfg(loom)\"]"],
    )?;
    expect("crates/tsdb/Cargo.toml", &["check-cfg = [\"cfg(loom)\"]"])?;
    expect(
        ".github/workflows/ci.yml",
        &[
            "cargo xtask lint",
            "--cfg loom",
            "--test loom_pool",
            "--test loom_shard",
            "--bench parallel_path",
            "BENCH_parallel_path.json",
        ],
    )?;
    Ok(errors)
}
