//! Crash-consistency ordering lint (pass 3 of `cargo xtask lint`).
//!
//! PR 6 proved (chaos + kill-anywhere tests) that the durable shard's
//! commit discipline survives a crash at any instruction boundary
//! *because* of a strict syntactic order in the persist path:
//!
//! ```text
//! wal.sync();            // 1. intent durable
//! seg.append_block(…);   // 2. data written
//! seg.sync();            // 3. data durable
//! wal.append_seal(…);    // 4. commit point
//! ```
//!
//! This pass checks that discipline statically over `crates/tsdb/src`:
//!
//! * **Rule A** — every `.append_block(…)` call is preceded, earlier in
//!   the same function, by a `.sync()` on a `wal` receiver;
//! * **Rule B** — every `.append_seal(…)` call is preceded by a
//!   `.sync()` on a `seg` receiver (the seal may only commit data that
//!   is already durable);
//! * **Rule C** — `.truncate(…)` / `.set_len(…)` never appear outside
//!   the recovery module and the vfs layer itself: shortening a live
//!   file is how a torn write becomes silent data loss.
//!
//! Two annotations (with mandatory reasons) cover the legitimate
//! exceptions:
//!
//! * `// crash-order: new-generation (<why>)` above a function —
//!   the function writes a *fresh, invisible* generation of files
//!   (compaction) that no reader can see until the manifest flips, so
//!   the WAL-first rule does not apply;
//! * `// crash-order: repair (<why>)` on a line — the truncate is the
//!   WAL's own torn-tail repair.
//!
//! The check is per-function and order-based, not path-sensitive: a
//! sync in a conditional branch still counts. That is deliberate — the
//! pass exists to catch *reordering* (the exact bug class the seal
//! discipline proof rules out), and the chaos suite remains the
//! semantic backstop.

use crate::lexer::{excluded_spans, item_fns, mask, method_call_sites, Lines};
use crate::util::read_scope;
use std::path::Path;

/// Source tree the pass walks (workspace-relative).
pub const SCOPE: &[&str] = &["crates/tsdb/src"];

/// Files where `truncate`/`set_len` are legitimate: recovery (repairs
/// happen before the store goes live) and the vfs layer (it *defines*
/// the operation).
pub const TRUNCATE_OK: &[&str] = &["crates/tsdb/src/recover.rs", "crates/tsdb/src/vfs.rs"];

/// Scan in-memory sources; returns violations. `check` and the test
/// suite share this.
pub fn scan_sources(files: &[(String, String)]) -> Vec<String> {
    let mut errors = Vec::new();
    for (rel, text) in files {
        let masked = mask(text);
        let excluded = excluded_spans(&masked);
        let raw_lines: Vec<String> = text.lines().map(str::to_string).collect();
        let lines = Lines::new(&masked);
        let fns = item_fns(&masked);
        let in_excluded = |pos: usize| excluded.iter().any(|(s, e)| pos >= *s && pos < *e);

        // Annotations.
        let mut newgen_fns: Vec<(usize, usize)> = Vec::new(); // body spans
        let mut repair_lines: Vec<usize> = Vec::new();
        for (i, line) in raw_lines.iter().enumerate() {
            let Some(at) = line.find("// crash-order:") else {
                continue;
            };
            let text = line[at + "// crash-order:".len()..].trim();
            let (form, rest) = text
                .split_once(' ')
                .map(|(a, b)| (a, b.trim()))
                .unwrap_or((text, ""));
            if !(rest.starts_with('(') && rest.ends_with(')') && rest.len() > 2) {
                errors.push(format!(
                    "crash-order: {rel}:{}: annotation needs a reason: \
                     `// crash-order: {form} (<why>)`",
                    i + 1
                ));
                continue;
            }
            match form {
                "new-generation" => {
                    let mut t = i + 1;
                    while t < raw_lines.len() && raw_lines[t].trim_start().starts_with("//") {
                        t += 1;
                    }
                    let target = t + 1;
                    match fns
                        .iter()
                        .filter(|f| lines.line_of(f.start) >= target)
                        .min_by_key(|f| f.start)
                    {
                        Some(f) => newgen_fns.push(f.body),
                        None => errors.push(format!(
                            "crash-order: {rel}:{}: new-generation annotation has no \
                             following fn",
                            i + 1
                        )),
                    }
                }
                "repair" => {
                    let target = if line.trim_start().starts_with("//") {
                        let mut t = i + 1;
                        while t < raw_lines.len() && raw_lines[t].trim_start().starts_with("//") {
                            t += 1;
                        }
                        t + 1
                    } else {
                        i + 1
                    };
                    repair_lines.push(target);
                }
                other => errors.push(format!(
                    "crash-order: {rel}:{}: unknown annotation form `{other}` \
                     (expected new-generation or repair)",
                    i + 1
                )),
            }
        }

        let sites = method_call_sites(
            &masked,
            &["append_block", "append_seal", "sync", "truncate", "set_len"],
            false,
        );
        let innermost = |pos: usize| {
            fns.iter()
                .filter(|f| f.contains(pos))
                .min_by_key(|f| f.body.1 - f.body.0)
        };
        let excerpt = |line: usize| -> String {
            raw_lines
                .get(line.saturating_sub(1))
                .map(|l| l.trim().chars().take(90).collect())
                .unwrap_or_default()
        };

        for site in &sites {
            if in_excluded(site.pos) {
                continue;
            }
            match site.method.as_str() {
                "append_block" | "append_seal" => {
                    let Some(f) = innermost(site.pos) else {
                        continue;
                    };
                    if newgen_fns.contains(&f.body) {
                        continue;
                    }
                    let want = if site.method == "append_block" {
                        "wal"
                    } else {
                        "seg"
                    };
                    let dominated = sites.iter().any(|s| {
                        s.method == "sync"
                            && s.pos < site.pos
                            && f.contains(s.pos)
                            && s.chain
                                .last()
                                .is_some_and(|seg| seg.name == want || seg.name.ends_with(want))
                    });
                    if !dominated {
                        let (rule, need) = if site.method == "append_block" {
                            ("A", "a WAL `.sync()` (intent must be durable first)")
                        } else {
                            (
                                "B",
                                "a segment `.sync()` (data must be durable before the seal)",
                            )
                        };
                        errors.push(format!(
                            "crash-order: {rel}:{}: rule {rule}: `.{}()` in `{}` is not \
                             preceded by {need} — or mark the fn \
                             `// crash-order: new-generation (<why>)`: {}",
                            site.line,
                            site.method,
                            f.name,
                            excerpt(site.line),
                        ));
                    }
                }
                "truncate" | "set_len" => {
                    if TRUNCATE_OK.contains(&rel.as_str()) || repair_lines.contains(&site.line) {
                        continue;
                    }
                    // `OpenOptions::truncate(false)` never shortens; a
                    // literal-false argument is configuration, not I/O.
                    if receiver_is_openoptions_false(&masked, site.pos) {
                        continue;
                    }
                    errors.push(format!(
                        "crash-order: {rel}:{}: rule C: `.{}()` outside recovery — \
                         shortening a live file turns a torn write into silent data \
                         loss; move it to recovery or mark the line \
                         `// crash-order: repair (<why>)`: {}",
                        site.line,
                        site.method,
                        excerpt(site.line),
                    ));
                }
                _ => {}
            }
        }
    }
    errors
}

/// Is this `truncate` call the `OpenOptions::truncate(false)` builder
/// flag? (Argument is the literal `false`.)
fn receiver_is_openoptions_false(masked: &str, pos: usize) -> bool {
    let chars: Vec<char> = masked.chars().collect();
    let n = chars.len();
    let mut i = pos;
    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    while i < n && chars[i].is_whitespace() {
        i += 1;
    }
    if i >= n || chars[i] != '(' {
        return false;
    }
    let arg: String = chars[i + 1..n.min(i + 8)].iter().collect();
    arg.trim_start().starts_with("false")
}

/// Full pass against the workspace.
pub fn check(root: &Path) -> Result<Vec<String>, String> {
    let files = read_scope(root, SCOPE, "crash-order")?;
    Ok(scan_sources(&files))
}
