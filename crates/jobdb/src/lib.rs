//! # tacc-jobdb — embedded relational store (PostgreSQL/Django-ORM substitute)
//!
//! §IV-A of the paper: "Metadata describing each job along with a set of
//! computed metrics are then ingested into a PostgreSQL database", and the
//! web portal's searches plus the §V-B case study run through Django's ORM
//! ("a variety of aggregation functions including averaging a metric field
//! over a returned job list").
//!
//! PostgreSQL is not available offline, so this crate provides the query
//! surface those analyses actually use, as an embedded typed store:
//!
//! * typed tables with a declared schema ([`table::Table`]),
//! * predicate filters with Django-style comparison suffixes
//!   (`MetaDataRate__gte`) ([`query::Query::filter_kw`]),
//! * ordering, limits, projection,
//! * aggregation: count / sum / avg / min / max, and group-by,
//! * a text persistence format that round-trips ([`db::Database::render`] /
//!   [`db::Database::parse`]).
//!
//! Scans are linear: the populations the paper queries (≤ ~400 k job rows)
//! scan in milliseconds, so secondary indexes would add complexity without
//! changing any experiment's shape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod query;
pub mod table;
pub mod value;

pub use db::Database;
pub use query::{CmpOp, CompiledFilter, Filter, Query};
pub use table::{Column, Row, Table, TableSchema};
pub use value::{Value, ValueType};
