//! The database: named tables plus text persistence.

use crate::table::{Table, TableError, TableSchema};
use crate::value::{Value, ValueType};
use std::collections::BTreeMap;
use std::fmt;

/// A named collection of tables with a persistable text form.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

/// Error from [`Database::parse`].
#[derive(Clone, Debug, PartialEq)]
pub struct DbParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for DbParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "db parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DbParseError {}

impl Database {
    /// New empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create a table. Replaces any existing table of the same name.
    pub fn create_table(&mut self, name: &str, schema: TableSchema) {
        self.tables.insert(name.to_string(), Table::new(schema));
    }

    /// Read access to a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Write access to a table.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Insert a row into a named table.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<(), TableError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| TableError::NoSuchColumn(format!("table {table}")))?
            .insert(values)
    }

    /// Render to the persistence text format:
    ///
    /// ```text
    /// #table jobs
    /// #schema jobid:str user:str nodes:int
    /// s1001<TAB>salice<TAB>i16
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, table) in &self.tables {
            out.push_str(&format!("#table {name}\n#schema"));
            for c in &table.schema().columns {
                out.push_str(&format!(" {}:{}", c.name, c.ty.name()));
            }
            out.push('\n');
            for row in table.rows() {
                for (i, v) in row.0.iter().enumerate() {
                    if i > 0 {
                        out.push('\t');
                    }
                    out.push_str(&v.render());
                }
                out.push('\n');
            }
        }
        out
    }

    /// Parse a rendered database.
    pub fn parse(text: &str) -> Result<Database, DbParseError> {
        let err = |line: usize, message: &str| DbParseError {
            line,
            message: message.to_string(),
        };
        let mut db = Database::new();
        let mut current: Option<String> = None;
        let mut want_schema = false;
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("#table ") {
                current = Some(name.to_string());
                want_schema = true;
                continue;
            }
            if let Some(body) = line.strip_prefix("#schema") {
                let name = current
                    .clone()
                    .ok_or_else(|| err(lineno, "#schema before #table"))?;
                if !want_schema {
                    return Err(err(lineno, "duplicate #schema"));
                }
                let mut cols = Vec::new();
                for tok in body.split_whitespace() {
                    let (cname, ctype) = tok
                        .split_once(':')
                        .ok_or_else(|| err(lineno, "malformed column"))?;
                    let ty = ValueType::parse(ctype)
                        .ok_or_else(|| err(lineno, &format!("bad type {ctype}")))?;
                    cols.push((cname, ty));
                }
                let pairs: Vec<(&str, ValueType)> = cols;
                db.create_table(&name, TableSchema::new(&pairs));
                want_schema = false;
                continue;
            }
            let name = current
                .clone()
                .ok_or_else(|| err(lineno, "row before #table"))?;
            if want_schema {
                return Err(err(lineno, "row before #schema"));
            }
            let values: Option<Vec<Value>> = line.split('\t').map(Value::parse).collect();
            let values = values.ok_or_else(|| err(lineno, "bad value"))?;
            db.insert(&name, values)
                .map_err(|e| err(lineno, &e.to_string()))?;
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "jobs",
            TableSchema::new(&[
                ("jobid", ValueType::Str),
                ("nodes", ValueType::Int),
                ("cpu", ValueType::Float),
                ("ok", ValueType::Bool),
            ]),
        );
        db.insert(
            "jobs",
            vec![
                "a\tb".into(),
                Value::Int(4),
                Value::Float(0.5),
                Value::Bool(true),
            ],
        )
        .unwrap();
        db.insert(
            "jobs",
            vec!["j2".into(), Value::Int(1), Value::Null, Value::Bool(false)],
        )
        .unwrap();
        db.create_table("empty", TableSchema::new(&[("x", ValueType::Int)]));
        db
    }

    #[test]
    fn render_parse_roundtrip() {
        let db = sample_db();
        let text = db.render();
        let parsed = Database::parse(&text).unwrap();
        assert_eq!(parsed, db);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Database::parse("row-without-table").is_err());
        assert!(Database::parse("#table t\nrow-before-schema").is_err());
        assert!(Database::parse("#schema a:int").is_err());
        assert!(Database::parse("#table t\n#schema a:whatever").is_err());
        assert!(Database::parse("#table t\n#schema a:int\nnotavalue").is_err());
    }

    #[test]
    fn insert_into_missing_table_errors() {
        let mut db = Database::new();
        assert!(db.insert("ghost", vec![Value::Int(1)]).is_err());
    }

    proptest! {
        /// Arbitrary string/float/int content round-trips through the
        /// persistence format (including tabs and newlines in strings).
        #[test]
        fn roundtrip_arbitrary_rows(
            rows in proptest::collection::vec((".*", any::<i64>(), 0.0f64..1e12), 0..25)
        ) {
            let mut db = Database::new();
            db.create_table("t", TableSchema::new(&[
                ("s", ValueType::Str),
                ("i", ValueType::Int),
                ("f", ValueType::Float),
            ]));
            for (s, i, f) in rows {
                db.insert("t", vec![s.into(), Value::Int(i), Value::Float(f)]).unwrap();
            }
            let parsed = Database::parse(&db.render()).unwrap();
            prop_assert_eq!(parsed, db);
        }
    }
}
