//! Typed values and the persistence escaping rules.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The column types the job database needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// 64-bit signed integer (timestamps, counts, node numbers).
    Int,
    /// 64-bit float (all Table I metrics).
    Float,
    /// UTF-8 string (user, executable, queue, status).
    Str,
    /// Boolean (flags).
    Bool,
}

impl ValueType {
    /// Name used in persisted schemas.
    pub fn name(self) -> &'static str {
        match self {
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
            ValueType::Bool => "bool",
        }
    }

    /// Inverse of [`ValueType::name`].
    pub fn parse(s: &str) -> Option<ValueType> {
        Some(match s {
            "int" => ValueType::Int,
            "float" => ValueType::Float,
            "str" => ValueType::Str,
            "bool" => ValueType::Bool,
            _ => return None,
        })
    }
}

/// A single cell value. `Null` is permitted in any column (metrics can be
/// missing — e.g. MIC metrics on nodes without a Phi).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Missing.
    Null,
}

impl Value {
    /// The value's type (None for Null).
    pub fn type_of(&self) -> Option<ValueType> {
        Some(match self {
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Bool(_) => ValueType::Bool,
            Value::Null => return None,
        })
    }

    /// Numeric view (ints and floats; bools as 0/1).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if Null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total ordering for sorting and comparisons: Null sorts lowest;
    /// numerics compare numerically across Int/Float; mixed non-numeric
    /// types compare by type rank (a schema violation that we keep total
    /// anyway so sorts never panic).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => match (a, b) {
                    (Str(x), Str(y)) => x.cmp(y),
                    _ => rank(a).cmp(&rank(b)),
                },
            },
        }
    }

    /// Escape for the tab-separated persistence format.
    pub fn render(&self) -> String {
        match self {
            Value::Int(i) => format!("i{i}"),
            // {:?} prints floats with enough precision to round-trip.
            Value::Float(f) => format!("f{f:?}"),
            Value::Str(s) => format!("s{}", escape(s)),
            Value::Bool(b) => format!("b{}", if *b { 1 } else { 0 }),
            Value::Null => "n".to_string(),
        }
    }

    /// Inverse of [`Value::render`].
    pub fn parse(s: &str) -> Option<Value> {
        let mut chars = s.chars();
        let tag = chars.next()?;
        let rest = chars.as_str();
        Some(match tag {
            'i' => Value::Int(rest.parse().ok()?),
            'f' => Value::Float(rest.parse().ok()?),
            's' => Value::Str(unescape(rest)?),
            'b' => Value::Bool(match rest {
                "1" => true,
                "0" => false,
                _ => return None,
            }),
            'n' if rest.is_empty() => Value::Null,
            _ => return None,
        })
    }
}

fn rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Str(_) => 4,
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                't' => out.push('\t'),
                'n' => out.push('\n'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x:.4}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "∅"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn render_parse_roundtrip_basics() {
        for v in [
            Value::Int(-42),
            Value::Float(3.25),
            Value::Float(f64::MAX),
            Value::Str("wrf.exe".into()),
            Value::Str("tabs\tand\nnewlines\\".into()),
            Value::Bool(true),
            Value::Null,
        ] {
            let r = v.render();
            assert_eq!(Value::parse(&r), Some(v.clone()), "{r}");
        }
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert!(Value::Null.total_cmp(&Value::Int(i64::MIN)) == Ordering::Less);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Value::parse(""), None);
        assert_eq!(Value::parse("ix"), None);
        assert_eq!(Value::parse("b2"), None);
        assert_eq!(Value::parse("nx"), None);
        assert_eq!(Value::parse("s\\q"), None);
        assert_eq!(Value::parse("qfoo"), None);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_strings(s in ".*") {
            let v = Value::Str(s);
            prop_assert_eq!(Value::parse(&v.render()), Some(v));
        }

        #[test]
        fn roundtrip_arbitrary_floats(x in proptest::num::f64::ANY) {
            let v = Value::Float(x);
            match Value::parse(&v.render()) {
                Some(Value::Float(y)) => {
                    if x.is_nan() {
                        prop_assert!(y.is_nan());
                    } else {
                        prop_assert_eq!(x, y);
                    }
                }
                other => prop_assert!(false, "got {other:?}"),
            }
        }

        #[test]
        fn total_cmp_is_total_and_antisymmetric(a in -1000i64..1000, b in -1000i64..1000) {
            let va = Value::Int(a);
            let vb = Value::Int(b);
            prop_assert_eq!(va.total_cmp(&vb), vb.total_cmp(&va).reverse());
        }
    }
}
