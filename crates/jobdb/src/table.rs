//! Tables: declared schemas and typed rows.

use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};

/// One column: name plus declared type.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (e.g. `MetaDataRate`).
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
}

impl Column {
    /// Shorthand constructor.
    pub fn new(name: &str, ty: ValueType) -> Column {
        Column {
            name: name.to_string(),
            ty,
        }
    }
}

/// Ordered column list.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Build from (name, type) pairs.
    pub fn new(cols: &[(&str, ValueType)]) -> TableSchema {
        TableSchema {
            columns: cols.iter().map(|(n, t)| Column::new(n, *t)).collect(),
        }
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// A row of values in schema order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Value at column index.
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

/// Errors from table mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum TableError {
    /// Row arity differs from schema arity.
    ArityMismatch {
        /// Values provided.
        got: usize,
        /// Columns declared.
        want: usize,
    },
    /// Non-null value of the wrong type for its column.
    TypeMismatch {
        /// Offending column name.
        column: String,
        /// Declared type.
        want: ValueType,
    },
    /// Unknown column name in a query.
    NoSuchColumn(String),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::ArityMismatch { got, want } => {
                write!(f, "row has {got} values, schema has {want} columns")
            }
            TableError::TypeMismatch { column, want } => {
                write!(f, "column {column} expects {}", want.name())
            }
            TableError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
        }
    }
}

impl std::error::Error for TableError {}

/// A typed table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Row>,
}

impl Table {
    /// New empty table.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Validate and insert a row.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<(), TableError> {
        if values.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                got: values.len(),
                want: self.schema.len(),
            });
        }
        for (v, c) in values.iter().zip(&self.schema.columns) {
            if let Some(t) = v.type_of() {
                if t != c.ty {
                    return Err(TableError::TypeMismatch {
                        column: c.name.clone(),
                        want: c.ty,
                    });
                }
            }
        }
        self.rows.push(Row(values));
        Ok(())
    }

    /// Value of `column` in row `row_idx`.
    pub fn value(&self, row_idx: usize, column: &str) -> Option<&Value> {
        let c = self.schema.index_of(column)?;
        self.rows.get(row_idx).map(|r| r.get(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_schema() -> TableSchema {
        TableSchema::new(&[
            ("jobid", ValueType::Str),
            ("nodes", ValueType::Int),
            ("cpu_usage", ValueType::Float),
        ])
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut t = Table::new(jobs_schema());
        assert!(t
            .insert(vec!["1".into(), Value::Int(4), Value::Float(0.8)])
            .is_ok());
        assert_eq!(
            t.insert(vec!["1".into(), Value::Int(4)]),
            Err(TableError::ArityMismatch { got: 2, want: 3 })
        );
        assert!(matches!(
            t.insert(vec!["1".into(), Value::Float(4.0), Value::Float(0.8)]),
            Err(TableError::TypeMismatch { .. })
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn nulls_allowed_in_any_column() {
        let mut t = Table::new(jobs_schema());
        t.insert(vec![Value::Null, Value::Null, Value::Null])
            .unwrap();
        assert!(t.value(0, "cpu_usage").unwrap().is_null());
    }

    #[test]
    fn value_lookup_by_name() {
        let mut t = Table::new(jobs_schema());
        t.insert(vec!["42".into(), Value::Int(8), Value::Float(0.5)])
            .unwrap();
        assert_eq!(t.value(0, "nodes"), Some(&Value::Int(8)));
        assert_eq!(t.value(0, "ghost"), None);
        assert_eq!(t.value(9, "nodes"), None);
    }
}
