//! Queries: filters with Django-style suffixes, ordering, aggregation.
//!
//! The web portal (§IV-B) searches jobs "along any combination of
//! metadata and up to three Search fields, where a Search field consists
//! of one of the metric names from Table I plus a modifying suffix to
//! indicate the comparison operator". That suffix syntax
//! (`MetaDataRate__gte`) is exactly Django's, and the §V-B case study
//! uses ORM aggregation ("averaging a metric field over a returned job
//! list"). This module provides both.

use crate::table::{Row, Table, TableError};
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Comparison operators, with their Django-style suffix names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `__eq` (also the default with no suffix).
    Eq,
    /// `__ne`
    Ne,
    /// `__lt`
    Lt,
    /// `__lte`
    Lte,
    /// `__gt`
    Gt,
    /// `__gte`
    Gte,
    /// `__contains` (substring, string columns).
    Contains,
}

impl CmpOp {
    /// Parse a `column__op` keyword into `(column, op)`; a bare column
    /// name means equality.
    pub fn split_kw(kw: &str) -> (&str, CmpOp) {
        if let Some((col, suffix)) = kw.rsplit_once("__") {
            let op = match suffix {
                "eq" => CmpOp::Eq,
                "ne" => CmpOp::Ne,
                "lt" => CmpOp::Lt,
                "lte" => CmpOp::Lte,
                "gt" => CmpOp::Gt,
                "gte" => CmpOp::Gte,
                "contains" => CmpOp::Contains,
                _ => return (kw, CmpOp::Eq), // not a recognized suffix
            };
            (col, op)
        } else {
            (kw, CmpOp::Eq)
        }
    }

    /// Apply the comparison. Null never matches anything except `Ne`.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        if lhs.is_null() {
            return self == CmpOp::Ne && !rhs.is_null();
        }
        match self {
            CmpOp::Contains => match (lhs.as_str(), rhs.as_str()) {
                (Some(a), Some(b)) => a.contains(b),
                _ => false,
            },
            _ => {
                let ord = lhs.total_cmp(rhs);
                match self {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Lte => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Gte => ord != Ordering::Less,
                    CmpOp::Contains => unreachable!(),
                }
            }
        }
    }
}

/// One predicate: `column op value`.
#[derive(Clone, Debug)]
pub struct Cond {
    /// Column name.
    pub column: String,
    /// Operator.
    pub op: CmpOp,
    /// Comparison value.
    pub value: Value,
}

/// A conjunction of predicates (the portal combines up to three search
/// fields with AND).
#[derive(Clone, Debug, Default)]
pub struct Filter {
    conds: Vec<Cond>,
}

impl Filter {
    /// Empty filter (matches everything).
    pub fn new() -> Filter {
        Filter::default()
    }

    /// Add a predicate from a Django-style keyword.
    pub fn kw(mut self, keyword: &str, value: impl Into<Value>) -> Filter {
        let (column, op) = CmpOp::split_kw(keyword);
        self.conds.push(Cond {
            column: column.to_string(),
            op,
            value: value.into(),
        });
        self
    }

    /// The predicates.
    pub fn conds(&self) -> &[Cond] {
        &self.conds
    }

    fn matches(&self, table: &Table, row: &Row) -> Result<bool, TableError> {
        for c in &self.conds {
            let idx = table
                .schema()
                .index_of(&c.column)
                .ok_or_else(|| TableError::NoSuchColumn(c.column.clone()))?;
            if !c.op.eval(row.get(idx), &c.value) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Resolve every predicate's column against `table` once, yielding
    /// a filter that evaluates rows without any name lookups (and
    /// without a `Result` per row). Column resolution errors surface
    /// here instead of on the first row, so partitioned scans can share
    /// one compiled filter across workers.
    pub fn compile(&self, table: &Table) -> Result<CompiledFilter, TableError> {
        let mut conds = Vec::with_capacity(self.conds.len());
        for c in &self.conds {
            let idx = table
                .schema()
                .index_of(&c.column)
                .ok_or_else(|| TableError::NoSuchColumn(c.column.clone()))?;
            conds.push((idx, c.op, c.value.clone()));
        }
        Ok(CompiledFilter { conds })
    }
}

/// A [`Filter`] with its column names resolved to indices for one
/// table (see [`Filter::compile`]). Evaluation is infallible and
/// `&self`, so one compiled filter can drive any number of concurrent
/// partition scans.
#[derive(Clone, Debug)]
pub struct CompiledFilter {
    conds: Vec<(usize, CmpOp, Value)>,
}

impl CompiledFilter {
    /// Does `row` satisfy every predicate? Rows must come from the
    /// table the filter was compiled against.
    pub fn matches(&self, row: &Row) -> bool {
        self.conds
            .iter()
            .all(|(idx, op, value)| op.eval(row.get(*idx), value))
    }
}

/// A query over one table. Build with [`Query::new`], chain filters and
/// ordering, then evaluate with [`Query::rows`] or an aggregate.
///
/// ```
/// use tacc_jobdb::{Database, Query, Table, TableSchema, Value, ValueType};
///
/// let mut db = Database::new();
/// db.create_table("jobs", TableSchema::new(&[
///     ("exec", ValueType::Str),
///     ("MetaDataRate", ValueType::Float),
/// ]));
/// db.insert("jobs", vec!["wrf.exe".into(), Value::Float(3900.0)]).unwrap();
/// db.insert("jobs", vec!["wrf.exe".into(), Value::Float(563905.0)]).unwrap();
///
/// let t = db.table("jobs").unwrap();
/// let storms = Query::new(t)
///     .filter_kw("exec", "wrf.exe")
///     .filter_kw("MetaDataRate__gte", 10_000.0)
///     .count()
///     .unwrap();
/// assert_eq!(storms, 1);
/// ```
pub struct Query<'t> {
    table: &'t Table,
    filter: Filter,
    order_by: Option<(String, bool)>,
    limit: Option<usize>,
}

impl<'t> Query<'t> {
    /// Query everything in `table`.
    pub fn new(table: &'t Table) -> Query<'t> {
        Query {
            table,
            filter: Filter::new(),
            order_by: None,
            limit: None,
        }
    }

    /// Add a Django-style predicate, e.g.
    /// `.filter_kw("MetaDataRate__gte", 10_000.0)`.
    pub fn filter_kw(mut self, keyword: &str, value: impl Into<Value>) -> Self {
        self.filter = self.filter.kw(keyword, value);
        self
    }

    /// Use a prebuilt filter (replaces any accumulated predicates).
    pub fn filter(mut self, filter: Filter) -> Self {
        self.filter = filter;
        self
    }

    /// Sort by a column (`desc` = descending). Nulls sort first.
    pub fn order_by(mut self, column: &str, desc: bool) -> Self {
        self.order_by = Some((column.to_string(), desc));
        self
    }

    /// Keep at most `n` rows (after ordering).
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Evaluate: matching rows in order.
    pub fn rows(&self) -> Result<Vec<&'t Row>, TableError> {
        let mut out: Vec<&Row> = Vec::new();
        for row in self.table.rows() {
            if self.filter.matches(self.table, row)? {
                out.push(row);
            }
        }
        if let Some((col, desc)) = &self.order_by {
            let idx = self
                .table
                .schema()
                .index_of(col)
                .ok_or_else(|| TableError::NoSuchColumn(col.clone()))?;
            out.sort_by(|a, b| {
                let ord = a.get(idx).total_cmp(b.get(idx));
                if *desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
        }
        if let Some(n) = self.limit {
            out.truncate(n);
        }
        Ok(out)
    }

    /// Count matching rows.
    pub fn count(&self) -> Result<usize, TableError> {
        Ok(self.rows()?.len())
    }

    /// Collect one column of the matching rows.
    pub fn values(&self, column: &str) -> Result<Vec<Value>, TableError> {
        let idx = self
            .table
            .schema()
            .index_of(column)
            .ok_or_else(|| TableError::NoSuchColumn(column.to_string()))?;
        Ok(self.rows()?.iter().map(|r| r.get(idx).clone()).collect())
    }

    fn numeric(&self, column: &str) -> Result<Vec<f64>, TableError> {
        Ok(self
            .values(column)?
            .iter()
            .filter_map(|v| v.as_f64())
            .collect())
    }

    /// Mean of a numeric column over matching rows (nulls skipped).
    /// The §V-B workflow: "averaging a metric field over a returned job
    /// list".
    pub fn avg(&self, column: &str) -> Result<Option<f64>, TableError> {
        let v = self.numeric(column)?;
        if v.is_empty() {
            Ok(None)
        } else {
            Ok(Some(v.iter().sum::<f64>() / v.len() as f64))
        }
    }

    /// Sum of a numeric column.
    pub fn sum(&self, column: &str) -> Result<f64, TableError> {
        Ok(self.numeric(column)?.iter().sum())
    }

    /// Minimum of a numeric column.
    pub fn min(&self, column: &str) -> Result<Option<f64>, TableError> {
        Ok(self.numeric(column)?.into_iter().reduce(f64::min))
    }

    /// Maximum of a numeric column.
    pub fn max(&self, column: &str) -> Result<Option<f64>, TableError> {
        Ok(self.numeric(column)?.into_iter().reduce(f64::max))
    }

    /// Group matching rows by a column's rendered value; returns
    /// group-key → row list, ordered by key.
    pub fn group_by(&self, column: &str) -> Result<BTreeMap<String, Vec<&'t Row>>, TableError> {
        let idx = self
            .table
            .schema()
            .index_of(column)
            .ok_or_else(|| TableError::NoSuchColumn(column.to_string()))?;
        let mut out: BTreeMap<String, Vec<&Row>> = BTreeMap::new();
        for row in self.rows()? {
            out.entry(row.get(idx).to_string()).or_default().push(row);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableSchema;
    use crate::value::ValueType;
    use proptest::prelude::*;

    fn jobs() -> Table {
        let mut t = Table::new(TableSchema::new(&[
            ("jobid", ValueType::Str),
            ("user", ValueType::Str),
            ("exec", ValueType::Str),
            ("nodes", ValueType::Int),
            ("cpu_usage", ValueType::Float),
            ("metadatarate", ValueType::Float),
        ]));
        let rows: Vec<(&str, &str, &str, i64, f64, f64)> = vec![
            ("1", "alice", "wrf.exe", 16, 0.82, 3900.0),
            ("2", "bob", "wrf.exe", 4, 0.67, 563000.0),
            ("3", "alice", "namd2", 32, 0.95, 12.0),
            ("4", "carol", "python", 1, 0.93, 5.0),
            ("5", "bob", "wrf.exe", 4, 0.64, 580000.0),
        ];
        for (j, u, e, n, c, m) in rows {
            t.insert(vec![
                j.into(),
                u.into(),
                e.into(),
                Value::Int(n),
                Value::Float(c),
                Value::Float(m),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn suffix_parsing() {
        assert_eq!(
            CmpOp::split_kw("MetaDataRate__gte"),
            ("MetaDataRate", CmpOp::Gte)
        );
        assert_eq!(CmpOp::split_kw("user"), ("user", CmpOp::Eq));
        assert_eq!(CmpOp::split_kw("exec__contains"), ("exec", CmpOp::Contains));
        // Unknown suffix: treated as part of the name (Django would 400;
        // we fail later with NoSuchColumn).
        assert_eq!(CmpOp::split_kw("a__bogus"), ("a__bogus", CmpOp::Eq));
    }

    #[test]
    fn portal_style_search() {
        let t = jobs();
        // "all jobs running wrf.exe with MetaDataRate >= 10000"
        let rows = Query::new(&t)
            .filter_kw("exec", "wrf.exe")
            .filter_kw("metadatarate__gte", 10_000.0)
            .rows()
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn ordering_and_limit() {
        let t = jobs();
        let rows = Query::new(&t)
            .order_by("cpu_usage", true)
            .limit(2)
            .rows()
            .unwrap();
        assert_eq!(rows[0].get(0), &Value::Str("3".into()));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn aggregates_match_hand_computation() {
        let t = jobs();
        let q = Query::new(&t).filter_kw("user", "bob");
        assert_eq!(q.count().unwrap(), 2);
        let avg = q.avg("cpu_usage").unwrap().unwrap();
        assert!((avg - 0.655).abs() < 1e-12);
        assert_eq!(q.min("nodes").unwrap(), Some(4.0));
        assert_eq!(q.max("metadatarate").unwrap(), Some(580000.0));
        assert_eq!(q.sum("nodes").unwrap(), 8.0);
    }

    #[test]
    fn group_by_user() {
        let t = jobs();
        let groups = Query::new(&t).group_by("user").unwrap();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups["alice"].len(), 2);
        assert_eq!(groups["bob"].len(), 2);
    }

    #[test]
    fn contains_and_ne() {
        let t = jobs();
        assert_eq!(
            Query::new(&t)
                .filter_kw("exec__contains", "wrf")
                .count()
                .unwrap(),
            3
        );
        assert_eq!(
            Query::new(&t).filter_kw("user__ne", "bob").count().unwrap(),
            3
        );
    }

    #[test]
    fn compiled_filter_matches_interpreted_filter() {
        let t = jobs();
        let f = Filter::new()
            .kw("exec", "wrf.exe")
            .kw("metadatarate__gte", 10_000.0);
        let compiled = f.compile(&t).unwrap();
        let via_query: Vec<&Row> = Query::new(&t).filter(f).rows().unwrap();
        let via_compiled: Vec<&Row> = t.rows().iter().filter(|r| compiled.matches(r)).collect();
        assert_eq!(via_query, via_compiled);
        // Bad columns fail at compile time, not per row.
        assert!(matches!(
            Filter::new().kw("ghost__gte", 1.0).compile(&t),
            Err(TableError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn unknown_column_errors() {
        let t = jobs();
        assert!(matches!(
            Query::new(&t).filter_kw("ghost__gte", 1.0).rows(),
            Err(TableError::NoSuchColumn(_))
        ));
        assert!(Query::new(&t).avg("ghost").is_err());
        assert!(Query::new(&t).order_by("ghost", false).rows().is_err());
    }

    #[test]
    fn null_semantics() {
        let mut t = Table::new(TableSchema::new(&[("x", ValueType::Float)]));
        t.insert(vec![Value::Null]).unwrap();
        t.insert(vec![Value::Float(1.0)]).unwrap();
        // Null matches nothing except __ne.
        assert_eq!(Query::new(&t).filter_kw("x__gte", 0.0).count().unwrap(), 1);
        assert_eq!(Query::new(&t).filter_kw("x__ne", 0.0).count().unwrap(), 2);
        // avg skips nulls.
        assert_eq!(Query::new(&t).avg("x").unwrap(), Some(1.0));
    }

    proptest! {
        /// Filters commute: A then B selects the same rows as B then A.
        #[test]
        fn filter_order_is_irrelevant(
            vals in proptest::collection::vec((0i64..100, 0.0f64..1.0), 1..60),
            ta in 0i64..100,
            tb in 0.0f64..1.0,
        ) {
            let mut t = Table::new(TableSchema::new(&[
                ("a", ValueType::Int),
                ("b", ValueType::Float),
            ]));
            for (a, b) in vals {
                t.insert(vec![Value::Int(a), Value::Float(b)]).unwrap();
            }
            let ab = Query::new(&t)
                .filter_kw("a__gte", ta)
                .filter_kw("b__lt", tb)
                .rows().unwrap();
            let ba = Query::new(&t)
                .filter_kw("b__lt", tb)
                .filter_kw("a__gte", ta)
                .rows().unwrap();
            prop_assert_eq!(ab, ba);
        }

        /// count(P) + count(!P) == total for threshold predicates on
        /// non-null data.
        #[test]
        fn complementary_predicates_partition(
            vals in proptest::collection::vec(0.0f64..1.0, 0..60),
            thr in 0.0f64..1.0,
        ) {
            let mut t = Table::new(TableSchema::new(&[("x", ValueType::Float)]));
            let total = vals.len();
            for v in vals {
                t.insert(vec![Value::Float(v)]).unwrap();
            }
            let ge = Query::new(&t).filter_kw("x__gte", thr).count().unwrap();
            let lt = Query::new(&t).filter_kw("x__lt", thr).count().unwrap();
            prop_assert_eq!(ge + lt, total);
        }
    }
}
