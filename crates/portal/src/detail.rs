//! The per-job detail view (Fig. 5).
//!
//! "The plots in this figure from top to bottom are the following
//! quantities plotted over time for each node reserved for the job:
//! Gigaflops; Memory Bandwidth in GB/s; Memory Usage in GB; Lustre
//! Filesystem Bandwidth in MB/s; Internode Infiniband traffic due to MPI
//! in MB/s; CPU User fraction." Plus the process table and the metric
//! pass/fail report of §IV-B.

use crate::render;
use std::collections::HashMap;
use tacc_collect::record::{RawFile, Sample};
use tacc_metrics::flags::{Flag, FlagContext, FlagRules};
use tacc_metrics::table1::JobMetrics;
use tacc_simnode::counter::wrapping_delta;
use tacc_simnode::intern::Sym;
use tacc_simnode::schema::DeviceType;
use tacc_tsdb::{SeriesKey, TagFilter, TsDb};

/// One point of the six-panel series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PanelPoint {
    /// Interval end (Unix seconds).
    pub t: u64,
    /// Node GFLOP/s.
    pub gflops: f64,
    /// Memory bandwidth, GB/s.
    pub mbw_gbs: f64,
    /// Memory usage, GB (gauge at interval end).
    pub mem_gb: f64,
    /// Lustre filesystem bandwidth, MB/s.
    pub lustre_mbs: f64,
    /// Internode Infiniband traffic, MB/s.
    pub ib_mbs: f64,
    /// CPU user fraction.
    pub cpu_user: f64,
}

/// One node's series.
#[derive(Clone, Debug)]
pub struct HostSeries {
    /// Hostname.
    pub hostname: String,
    /// Points in time order.
    pub points: Vec<PanelPoint>,
}

/// The six-panel per-node time series of one job.
#[derive(Clone, Debug)]
pub struct JobTimeSeries {
    /// The job id.
    pub jobid: String,
    /// One series per node, sorted by hostname.
    pub hosts: Vec<HostSeries>,
}

fn cum_events(
    prev: &Sample,
    cur: &Sample,
    rf: &RawFile,
    dt: DeviceType,
    events: &[&str],
    scale: f64,
) -> f64 {
    let Some(schema) = rf.header.schemas.get(&dt) else {
        return 0.0;
    };
    let mut total = 0.0;
    for cur_rec in cur.devices_of(dt) {
        let Some(prev_vals) = prev.device(dt, cur_rec.instance.as_str()) else {
            continue;
        };
        for ev in events {
            let Some(i) = schema.index_of(ev) else {
                continue;
            };
            total += wrapping_delta(prev_vals[i], cur_rec.values[i], schema.events[i].width) as f64;
        }
    }
    total * scale
}

impl JobTimeSeries {
    /// Extract the series for `jobid` from parsed raw files (one per
    /// host-day; multiple files for the same host are merged).
    pub fn extract(raw_files: &[RawFile], jobid: &str) -> JobTimeSeries {
        // Collect each host's samples tagged with the job.
        let mut per_host: HashMap<String, Vec<(&RawFile, &Sample)>> = HashMap::new();
        for rf in raw_files {
            for s in &rf.samples {
                if s.jobids.iter().any(|j| j == jobid) {
                    per_host
                        .entry(rf.header.hostname.to_string())
                        .or_default()
                        .push((rf, s));
                }
            }
        }
        let mut hosts: Vec<HostSeries> = per_host
            .into_iter()
            .map(|(hostname, mut samples)| {
                samples.sort_by_key(|(_, s)| s.time.0);
                let mut points = Vec::new();
                for w in samples.windows(2) {
                    let (rf, prev) = w[0];
                    let (_, cur) = w[1];
                    let dt_s = (cur.time.as_secs() - prev.time.as_secs()) as f64;
                    if dt_s <= 0.0 {
                        continue;
                    }
                    let arch = rf.header.arch;
                    let w_flops = arch.vector_width_flops() as f64;
                    let scalar = cum_events(prev, cur, rf, DeviceType::Cpu, &["FP_SCALAR"], 1.0);
                    let vector = cum_events(prev, cur, rf, DeviceType::Cpu, &["FP_VECTOR"], 1.0);
                    let gflops = (scalar + w_flops * vector) / dt_s / 1e9;
                    let mbw_gbs = cum_events(
                        prev,
                        cur,
                        rf,
                        DeviceType::Imc,
                        &["CAS_READS", "CAS_WRITES"],
                        64.0,
                    ) / dt_s
                        / 1e9;
                    let lustre_mbs = cum_events(
                        prev,
                        cur,
                        rf,
                        DeviceType::Llite,
                        &["read_bytes", "write_bytes"],
                        1.0,
                    ) / dt_s
                        / 1e6;
                    let ib_mbs = cum_events(
                        prev,
                        cur,
                        rf,
                        DeviceType::Ib,
                        &["port_xmit_data", "port_rcv_data"],
                        4.0,
                    ) / dt_s
                        / 1e6;
                    let user = cum_events(prev, cur, rf, DeviceType::Cpustat, &["user"], 1.0);
                    let total = cum_events(
                        prev,
                        cur,
                        rf,
                        DeviceType::Cpustat,
                        &["user", "nice", "system", "idle", "iowait"],
                        1.0,
                    );
                    let cpu_user = if total > 0.0 { user / total } else { 0.0 };
                    // MemUsage gauge at the interval end.
                    let mem_kib: u64 = cur
                        .devices_of(DeviceType::Mem)
                        .filter_map(|r| {
                            rf.header
                                .schemas
                                .get(&DeviceType::Mem)
                                .and_then(|s| s.index_of("MemUsed"))
                                .map(|i| r.values[i])
                        })
                        .sum();
                    points.push(PanelPoint {
                        t: cur.time.as_secs(),
                        gflops,
                        mbw_gbs,
                        mem_gb: mem_kib as f64 * 1024.0 / 1e9,
                        lustre_mbs,
                        ib_mbs,
                        cpu_user,
                    });
                }
                HostSeries { hostname, points }
            })
            .collect();
        hosts.sort_by(|a, b| a.hostname.cmp(&b.hostname));
        JobTimeSeries {
            jobid: jobid.to_string(),
            hosts,
        }
    }

    /// Store the six panels into `db`, one series per host per panel,
    /// keyed `(host, "panel", <jobid>, <panel event>)` — the long-lived
    /// form the portal serves repeat detail-page hits from without
    /// re-reading raw files.
    pub fn store(&self, db: &TsDb) {
        for h in &self.hosts {
            for (_, ev) in PANELS {
                let key = SeriesKey::new(&h.hostname, "panel", &self.jobid, ev);
                for p in &h.points {
                    db.insert(key.clone(), p.t, panel_value(p, ev));
                }
            }
        }
    }

    /// Render the six panels, one sparkline per node per panel.
    pub fn render(&self) -> String {
        let mut out = format!("=== Job {} detail (Fig. 5 panels) ===\n", self.jobid);
        for (title, ev) in PANELS {
            out.push_str(&format!("--- {title} ---\n"));
            for h in &self.hosts {
                let vals: Vec<f64> = h.points.iter().map(|p| panel_value(p, ev)).collect();
                out.push_str(&panel_line(&h.hostname, &vals));
            }
        }
        out
    }
}

/// The six Fig. 5 panels: display title and the event tag the series is
/// stored under in the time-series database.
const PANELS: [(&str, &str); 6] = [
    ("Gigaflops", "gflops"),
    ("Memory Bandwidth (GB/s)", "mbw_gbs"),
    ("Memory Usage (GB)", "mem_gb"),
    ("Lustre Bandwidth (MB/s)", "lustre_mbs"),
    ("Infiniband MPI (MB/s)", "ib_mbs"),
    ("CPU User Fraction", "cpu_user"),
];

fn panel_value(p: &PanelPoint, ev: &str) -> f64 {
    match ev {
        "gflops" => p.gflops,
        "mbw_gbs" => p.mbw_gbs,
        "mem_gb" => p.mem_gb,
        "lustre_mbs" => p.lustre_mbs,
        "ib_mbs" => p.ib_mbs,
        "cpu_user" => p.cpu_user,
        _ => 0.0,
    }
}

fn panel_line(host: impl std::fmt::Display, vals: &[f64]) -> String {
    let max = vals.iter().cloned().fold(0.0, f64::max);
    format!(
        "  {:<12} {} (max {})\n",
        host,
        render::sparkline(vals),
        render::num(max)
    )
}

/// Render the Fig. 5 detail panels straight out of the time-series
/// store. Each series is streamed through [`TsDb::range_for_each`] into
/// one reused value buffer — no intermediate `Vec<DataPoint>` is
/// materialized per series, which is what keeps repeat detail-page
/// renders off the allocator.
pub fn render_job_detail(db: &TsDb, jobid: &str) -> String {
    let filter = TagFilter::any().dev_type("panel").device(jobid);
    let keys = db.keys(&filter);
    // Keys sort host-first (string order), so hosts come out sorted.
    let mut hosts: Vec<Sym> = keys.iter().map(|k| k.host).collect();
    hosts.dedup();
    let mut out = format!("=== Job {jobid} detail (Fig. 5 panels) ===\n");
    let mut vals: Vec<f64> = Vec::new();
    for (title, ev) in PANELS {
        out.push_str(&format!("--- {title} ---\n"));
        for &host in &hosts {
            let key = SeriesKey {
                host,
                dev_type: Sym::new("panel"),
                device: Sym::new(jobid),
                event: Sym::new(ev),
            };
            vals.clear();
            db.range_for_each(&key, 0, u64::MAX, |_, v| vals.push(v));
            out.push_str(&panel_line(host.as_str(), &vals));
        }
    }
    out
}

/// The metric pass/fail report shown on the detail page ("a report
/// indicating which of the computed metrics passed or failed comparison
/// tests").
pub fn metric_report(metrics: &JobMetrics, ctx: &FlagContext, rules: &FlagRules) -> String {
    let flags: Vec<Flag> = rules.evaluate(ctx, metrics);
    let mut out = String::from("=== Metric report ===\n");
    out.push_str(&metrics.render_table());
    if flags.is_empty() {
        out.push_str("All comparison tests passed.\n");
    } else {
        out.push_str("FAILED comparison tests:\n");
        for f in &flags {
            out.push_str(&format!("  [{f}] {}\n", f.describe()));
        }
    }
    out
}

/// The process sub-table of the detail view ("individual processes and
/// their memory usage, cpu affinities, and thread count").
pub fn process_report(sample: &Sample) -> String {
    let header = ["PID", "Comm", "UID", "VmHWM(MB)", "VmRSS(MB)", "Threads"];
    let rows: Vec<Vec<String>> = sample
        .processes
        .iter()
        .map(|p| {
            vec![
                p.pid.to_string(),
                p.comm.to_string(),
                p.uid.to_string(),
                format!("{:.0}", p.values[1] as f64 / 1024.0),
                format!("{:.0}", p.values[2] as f64 / 1024.0),
                p.values[7].to_string(),
            ]
        })
        .collect();
    render::table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_collect::discovery::{discover, BuildOptions};
    use tacc_collect::engine::Sampler;
    use tacc_collect::record::RawFile;
    use tacc_simnode::pseudofs::NodeFs;
    use tacc_simnode::topology::NodeTopology;
    use tacc_simnode::workload::{LustreDemand, NodeDemand};
    use tacc_simnode::{SimDuration, SimNode, SimTime};

    /// Build raw files for a 2-node job where only node 0 does Lustre
    /// I/O (the Fig. 5 signature: "actual Lustre bandwidth utilization
    /// is small and restricted to a single node").
    fn job_raw_files() -> Vec<RawFile> {
        let mut out = Vec::new();
        for node_idx in 0..2usize {
            let mut node = SimNode::new(format!("c401-{node_idx:04}"), NodeTopology::stampede());
            node.spawn_process("wrf.exe", 9999, 16, 0xFFFF);
            let cfg = {
                let fs = NodeFs::new(&node);
                discover(&fs, BuildOptions::default()).unwrap()
            };
            let mut sampler = Sampler::new(&node.hostname.clone(), &cfg);
            let mut rf = RawFile::new(sampler.header().clone());
            let demand = NodeDemand {
                active_cores: 16,
                cpu_user_frac: if node_idx == 0 { 0.5 } else { 0.7 },
                cpu_iowait_frac: if node_idx == 0 { 0.3 } else { 0.0 },
                flops_per_sec: 1e10,
                mem_bw_bytes_per_sec: 5e9,
                mem_used_bytes: 6 << 30,
                ib_bytes_per_sec: 5e7,
                lustre: if node_idx == 0 {
                    vec![LustreDemand {
                        mdc_reqs_per_sec: 140_000.0,
                        mdc_wait_us: 200.0,
                        osc_reqs_per_sec: 10.0,
                        osc_wait_us: 1000.0,
                        opens_per_sec: 15_000.0,
                        getattr_per_sec: 30_000.0,
                        read_bytes_per_sec: 2e6,
                        write_bytes_per_sec: 3e6,
                    }]
                } else {
                    vec![]
                },
                ..NodeDemand::default()
            };
            for k in 0..=6u64 {
                if k > 0 {
                    node.advance(SimDuration::from_secs(600), &demand);
                }
                let fs = NodeFs::new(&node);
                let s =
                    sampler.sample(&fs, SimTime::from_secs(600 * k), &["4242".to_string()], &[]);
                rf.samples.push(s);
            }
            out.push(rf);
        }
        out
    }

    #[test]
    fn extracts_per_node_series() {
        let files = job_raw_files();
        let ts = JobTimeSeries::extract(&files, "4242");
        assert_eq!(ts.hosts.len(), 2);
        assert_eq!(ts.hosts[0].points.len(), 6);
        // Node 0 has Lustre traffic, node 1 none.
        let l0 = ts.hosts[0].points.iter().map(|p| p.lustre_mbs).sum::<f64>();
        let l1 = ts.hosts[1].points.iter().map(|p| p.lustre_mbs).sum::<f64>();
        assert!(l0 > 1.0, "node 0 lustre {l0}");
        assert!(l1 < 0.01, "node 1 lustre {l1}");
        // CPU user fraction differs by node (low on the I/O node).
        let c0 = ts.hosts[0].points[0].cpu_user;
        let c1 = ts.hosts[1].points[0].cpu_user;
        assert!(c0 < 0.6 && c1 > 0.6, "c0={c0} c1={c1}");
        // GFLOPS around 10.
        assert!((ts.hosts[1].points[0].gflops - 10.0).abs() < 0.5);
        // Memory gauge around 6.4 GB.
        assert!((ts.hosts[0].points[0].mem_gb - 6.44).abs() < 0.3);
    }

    #[test]
    fn unknown_job_yields_empty_series() {
        let files = job_raw_files();
        let ts = JobTimeSeries::extract(&files, "999999");
        assert!(ts.hosts.is_empty());
    }

    #[test]
    fn render_contains_all_six_panels() {
        let files = job_raw_files();
        let ts = JobTimeSeries::extract(&files, "4242");
        let s = ts.render();
        for panel in [
            "Gigaflops",
            "Memory Bandwidth",
            "Memory Usage",
            "Lustre Bandwidth",
            "Infiniband MPI",
            "CPU User Fraction",
        ] {
            assert!(s.contains(panel), "missing {panel}");
        }
        assert!(s.contains("c401-0000"));
        assert!(s.contains("c401-0001"));
    }

    #[test]
    fn tsdb_backed_render_matches_in_memory_render() {
        let files = job_raw_files();
        let ts = JobTimeSeries::extract(&files, "4242");
        let db = TsDb::new();
        ts.store(&db);
        assert_eq!(db.n_series(), 12, "6 panels x 2 hosts");
        // Streaming the panels back out of the store reproduces the
        // point-vec render byte for byte.
        assert_eq!(render_job_detail(&db, "4242"), ts.render());
        // A job with no stored panels renders an empty detail header.
        let empty = render_job_detail(&db, "999999");
        assert!(empty.contains("=== Job 999999"));
        assert!(!empty.contains("c401-"));
    }

    #[test]
    fn process_report_renders() {
        let files = job_raw_files();
        let last = files[0].samples.last().unwrap();
        let rep = process_report(last);
        assert!(rep.contains("wrf.exe"));
        assert!(rep.contains("9999"));
    }

    #[test]
    fn metric_report_lists_failures() {
        use tacc_metrics::table1::MetricId;
        let mut m = JobMetrics::new();
        m.set(MetricId::MetaDataRate, 500_000.0);
        m.set(MetricId::CpuUsage, 0.67);
        let ctx = FlagContext {
            queue_name: "normal".to_string(),
            node_memory_gb: 34.0,
        };
        let rep = metric_report(&m, &ctx, &FlagRules::default());
        assert!(rep.contains("FAILED"));
        assert!(rep.contains("HighMetadataRate"));
    }
}
