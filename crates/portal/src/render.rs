//! Text rendering helpers: aligned tables and sparklines.

/// Render an aligned text table: header row plus data rows. Columns are
/// sized to their widest cell.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(n_cols) {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<w$}", cell, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Unicode sparkline of a series, scaled to its own min..max. Empty
/// input renders as an empty string; a flat series renders mid-level.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|v| {
            if !v.is_finite() {
                return '?';
            }
            if max <= min {
                return LEVELS[3];
            }
            let x = (v - min) / (max - min);
            let idx = ((x * 7.0).round() as usize).min(7);
            LEVELS[idx]
        })
        .collect()
}

/// Format a float compactly for table cells (3 significant-ish digits,
/// scientific for very large/small).
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.2e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["JobID", "User"],
            &[
                vec!["1".to_string(), "alice".to_string()],
                vec!["104857".to_string(), "b".to_string()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("JobID"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // "User" column starts at the same offset in all rows.
        let off = lines[0].find("User").unwrap();
        assert_eq!(&lines[2][off..off + 5], "alice");
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        // Flat series: all mid.
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert!(flat.chars().all(|c| c == '▄'));
        assert_eq!(sparkline(&[f64::NAN, 1.0, 0.0]).chars().next(), Some('?'));
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(0.8), "0.80");
        assert_eq!(num(563905.0), "563905");
        assert_eq!(num(5_639_050.0), "5.64e6");
        assert_eq!(num(0.0001), "1.00e-4");
    }
}
