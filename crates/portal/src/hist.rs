//! Histograms — the automatic four-panel figure every portal query
//! returns (Fig. 4): jobs versus runtime, nodes, queue wait time, and
//! maximum metadata requests.

use crate::render;
use tacc_metrics::sketch::QuantileSketch;
use tacc_simnode::pool::WorkerPool;

/// A 1-D histogram with fixed-width (linear or logarithmic) bins.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Title shown above the panel.
    pub title: String,
    /// Bin lower edges (the last bin's upper edge is `max`).
    pub edges: Vec<f64>,
    /// Counts per bin.
    pub counts: Vec<usize>,
    /// Smallest value observed.
    pub min: f64,
    /// Largest value observed.
    pub max: f64,
    /// Values histogrammed.
    pub n: usize,
    /// Whether bins are logarithmic.
    pub log: bool,
}

impl Histogram {
    /// Build a linear histogram with `bins` equal-width bins.
    pub fn linear(title: &str, values: &[f64], bins: usize) -> Histogram {
        Self::build(title, values, bins, false)
    }

    /// Build a log10 histogram (values ≤ 0 are clamped into the lowest
    /// bin) — used for the metadata-requests panel where outliers span
    /// orders of magnitude.
    pub fn log10(title: &str, values: &[f64], bins: usize) -> Histogram {
        Self::build(title, values, bins, true)
    }

    fn build(title: &str, values: &[f64], bins: usize, log: bool) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        let finite: Vec<f64> = values.iter().cloned().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Histogram {
                title: title.to_string(),
                edges: vec![0.0],
                counts: vec![0; bins],
                min: 0.0,
                max: 0.0,
                n: 0,
                log,
            };
        }
        let min = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let tx = |v: f64| -> f64 {
            if log {
                v.max(1e-9).log10()
            } else {
                v
            }
        };
        let (lo, hi) = (tx(min), tx(max));
        let width = if hi > lo {
            (hi - lo) / bins as f64
        } else {
            1.0
        };
        let mut counts = vec![0usize; bins];
        for v in &finite {
            let idx = (((tx(*v) - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        let edges = (0..bins)
            .map(|i| {
                let e = lo + i as f64 * width;
                if log {
                    10f64.powf(e)
                } else {
                    e
                }
            })
            .collect();
        Histogram {
            title: title.to_string(),
            edges,
            counts,
            min,
            max,
            n: finite.len(),
            log,
        }
    }

    /// Build from an ingest-time [`QuantileSketch`] instead of
    /// rescanning a column.
    ///
    /// Bin edges follow the same extent/width rule as the exact build
    /// (the sketch's min/max are exact, so the edges are identical);
    /// each bin's count is the difference of two rank queries at the
    /// bin's value boundaries. A rank query errs by at most `εn`
    /// (GK invariant), so **every per-bin count is within `2εn` of the
    /// exact histogram's**, up to values lying exactly on a bin edge
    /// (the sketch counts an edge value into the lower bin, the exact
    /// build into the upper). The conformance test below checks this
    /// bound against [`Histogram::build`].
    pub fn from_sketch(title: &str, sketch: &QuantileSketch, bins: usize, log: bool) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        let (Some(min), Some(max)) = (sketch.min(), sketch.max()) else {
            return Histogram {
                title: title.to_string(),
                edges: vec![0.0],
                counts: vec![0; bins],
                min: 0.0,
                max: 0.0,
                n: 0,
                log,
            };
        };
        let tx = |v: f64| -> f64 {
            if log {
                v.max(1e-9).log10()
            } else {
                v
            }
        };
        let untx = |e: f64| -> f64 {
            if log {
                10f64.powf(e)
            } else {
                e
            }
        };
        let (lo, hi) = (tx(min), tx(max));
        let width = if hi > lo {
            (hi - lo) / bins as f64
        } else {
            1.0
        };
        let mut counts = vec![0usize; bins];
        let mut prev_cum = 0u64;
        for (i, c) in counts.iter_mut().enumerate() {
            // Cumulative count at the bin's upper value boundary; the
            // last bin absorbs everything (as the exact build's
            // `.min(bins - 1)` clamp does).
            let cum = if i + 1 == bins {
                sketch.count()
            } else {
                sketch.rank(untx(lo + (i + 1) as f64 * width)).max(prev_cum)
            };
            *c = (cum - prev_cum) as usize;
            prev_cum = cum;
        }
        let edges = (0..bins).map(|i| untx(lo + i as f64 * width)).collect();
        Histogram {
            title: title.to_string(),
            edges,
            counts,
            min,
            max,
            n: sketch.count() as usize,
            log,
        }
    }

    /// [`Histogram::linear`] built as a parallel partition scan.
    pub fn linear_par(title: &str, values: &[f64], bins: usize, pool: &WorkerPool) -> Histogram {
        Self::build_par(title, values, bins, false, pool)
    }

    /// [`Histogram::log10`] built as a parallel partition scan.
    pub fn log10_par(title: &str, values: &[f64], bins: usize, pool: &WorkerPool) -> Histogram {
        Self::build_par(title, values, bins, true, pool)
    }

    /// Two parallel passes over contiguous chunks of `values`: first
    /// per-chunk `(n, min, max)` merged into the global extent, then
    /// per-chunk integer bin counts merge-summed. Counts are exact
    /// integers and min/max merges are order-insensitive, so the result
    /// is bit-identical to the sequential [`Histogram::build`] for any
    /// chunking.
    fn build_par(
        title: &str,
        values: &[f64],
        bins: usize,
        log: bool,
        pool: &WorkerPool,
    ) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        let parts = pool.workers().max(1);
        let chunk = values.len().div_ceil(parts).max(1);
        let part = |i: usize| -> &[f64] {
            let start = (i * chunk).min(values.len());
            let end = ((i + 1) * chunk).min(values.len());
            &values[start..end]
        };
        let extents = pool.map_parts(parts, |i, _scratch| {
            let mut n = 0usize;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for v in part(i).iter().filter(|v| v.is_finite()) {
                n += 1;
                min = min.min(*v);
                max = max.max(*v);
            }
            (n, min, max)
        });
        let (n, min, max) = extents
            .into_iter()
            .fold((0, f64::INFINITY, f64::NEG_INFINITY), |a, e| {
                (a.0 + e.0, a.1.min(e.1), a.2.max(e.2))
            });
        if n == 0 {
            return Histogram {
                title: title.to_string(),
                edges: vec![0.0],
                counts: vec![0; bins],
                min: 0.0,
                max: 0.0,
                n: 0,
                log,
            };
        }
        let tx = |v: f64| -> f64 {
            if log {
                v.max(1e-9).log10()
            } else {
                v
            }
        };
        let (lo, hi) = (tx(min), tx(max));
        let width = if hi > lo {
            (hi - lo) / bins as f64
        } else {
            1.0
        };
        let partials = pool.map_parts(parts, |i, _scratch| {
            let mut counts = vec![0usize; bins];
            for v in part(i).iter().filter(|v| v.is_finite()) {
                let idx = (((tx(*v) - lo) / width) as usize).min(bins - 1);
                counts[idx] += 1;
            }
            counts
        });
        let mut counts = vec![0usize; bins];
        for p in partials {
            for (c, pc) in counts.iter_mut().zip(p) {
                *c += pc;
            }
        }
        let edges = (0..bins)
            .map(|i| {
                let e = lo + i as f64 * width;
                if log {
                    10f64.powf(e)
                } else {
                    e
                }
            })
            .collect();
        Histogram {
            title: title.to_string(),
            edges,
            counts,
            min,
            max,
            n,
            log,
        }
    }

    /// Total count across bins (== number of finite values).
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Render as a horizontal-bar ASCII panel.
    pub fn render(&self) -> String {
        let mut out = format!("{} (n = {})\n", self.title, self.n);
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (i, c) in self.counts.iter().enumerate() {
            let lo = self.edges[i];
            let hi = if i + 1 < self.edges.len() {
                self.edges[i + 1]
            } else {
                self.max
            };
            let bar_len = (c * 50).div_ceil(peak);
            let bar: String = "#".repeat(if *c > 0 { bar_len.max(1) } else { 0 });
            out.push_str(&format!(
                "  [{:>10} – {:>10}] {:>7} {}\n",
                render::num(lo),
                render::num(hi),
                c,
                bar
            ));
        }
        out
    }
}

/// The standard Fig. 4 four-panel set over a job list's columns.
pub struct Fig4Panels {
    /// Jobs vs runtime (hours).
    pub runtime: Histogram,
    /// Jobs vs node count.
    pub nodes: Histogram,
    /// Jobs vs queue wait (hours).
    pub queue_wait: Histogram,
    /// Jobs vs maximum metadata request rate (log bins — the panel
    /// where the §V-B outliers are visible).
    pub metadata_reqs: Histogram,
}

impl Fig4Panels {
    /// Build the four panels from per-job vectors.
    pub fn new(
        runtime_hours: &[f64],
        nodes: &[f64],
        queue_wait_hours: &[f64],
        metadata_reqs: &[f64],
    ) -> Fig4Panels {
        Fig4Panels {
            runtime: Histogram::linear("Jobs vs Runtime (h)", runtime_hours, 12),
            nodes: Histogram::linear("Jobs vs Nodes", nodes, 12),
            queue_wait: Histogram::linear("Jobs vs Queue Wait (h)", queue_wait_hours, 12),
            metadata_reqs: Histogram::log10("Jobs vs Max Metadata Reqs (1/s)", metadata_reqs, 12),
        }
    }

    /// [`Fig4Panels::new`] with each panel built as a parallel
    /// partition scan on `pool`.
    pub fn new_par(
        runtime_hours: &[f64],
        nodes: &[f64],
        queue_wait_hours: &[f64],
        metadata_reqs: &[f64],
        pool: &WorkerPool,
    ) -> Fig4Panels {
        Fig4Panels {
            runtime: Histogram::linear_par("Jobs vs Runtime (h)", runtime_hours, 12, pool),
            nodes: Histogram::linear_par("Jobs vs Nodes", nodes, 12, pool),
            queue_wait: Histogram::linear_par("Jobs vs Queue Wait (h)", queue_wait_hours, 12, pool),
            metadata_reqs: Histogram::log10_par(
                "Jobs vs Max Metadata Reqs (1/s)",
                metadata_reqs,
                12,
                pool,
            ),
        }
    }

    /// Render all four panels.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}\n{}\n{}",
            self.runtime.render(),
            self.nodes.render(),
            self.queue_wait.render(),
            self.metadata_reqs.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_histogram_bins_correctly() {
        let h = Histogram::linear("t", &[0.0, 0.5, 1.0, 1.5, 2.0], 4);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts, vec![1, 1, 1, 2]); // max lands in last bin
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 2.0);
    }

    #[test]
    fn log_histogram_separates_outliers() {
        // 99 jobs near 10 req/s, one at 563905: with log bins the
        // outlier occupies a distant bin (the Fig. 4 signature).
        let mut vals = vec![10.0; 99];
        vals.push(563_905.0);
        let h = Histogram::log10("md", &vals, 10);
        assert_eq!(h.counts[0], 99);
        assert_eq!(*h.counts.last().unwrap(), 1);
        assert!(h.counts[1..9].iter().all(|c| *c == 0));
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Histogram::linear("e", &[], 5);
        assert_eq!(empty.total(), 0);
        let flat = Histogram::linear("f", &[3.0, 3.0], 5);
        assert_eq!(flat.total(), 2);
        let nan = Histogram::linear("n", &[f64::NAN, 1.0], 5);
        assert_eq!(nan.total(), 1);
    }

    #[test]
    fn render_contains_bars() {
        let h = Histogram::linear("Jobs vs Runtime (h)", &[1.0, 1.1, 5.0], 5);
        let s = h.render();
        assert!(s.contains("Jobs vs Runtime"));
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    fn fig4_panels_build() {
        let p = Fig4Panels::new(
            &[1.0, 2.0, 3.0],
            &[1.0, 4.0, 16.0],
            &[0.1, 0.5, 2.0],
            &[10.0, 3900.0, 563905.0],
        );
        let s = p.render();
        assert!(s.contains("Jobs vs Nodes"));
        assert!(s.contains("Max Metadata Reqs"));
        assert!(p.metadata_reqs.log);
    }

    #[test]
    fn parallel_build_handles_degenerate_inputs() {
        let pool = WorkerPool::new(4);
        assert_eq!(
            Histogram::linear_par("e", &[], 5, &pool),
            Histogram::linear("e", &[], 5)
        );
        assert_eq!(
            Histogram::linear_par("n", &[f64::NAN, 1.0], 5, &pool),
            Histogram::linear("n", &[f64::NAN, 1.0], 5)
        );
        assert_eq!(
            Histogram::log10_par("f", &[3.0, 3.0], 5, &pool),
            Histogram::log10("f", &[3.0, 3.0], 5)
        );
    }

    proptest! {
        /// Parallel build is bit-identical to sequential for any input
        /// and any worker count.
        #[test]
        fn parallel_build_matches_sequential(
            vals in proptest::collection::vec(-1e6f64..1e6, 0..300),
            bins in 1usize..20,
            workers in 1usize..6,
        ) {
            let pool = WorkerPool::new(workers);
            prop_assert_eq!(
                Histogram::linear_par("p", &vals, bins, &pool),
                Histogram::linear("p", &vals, bins)
            );
            prop_assert_eq!(
                Histogram::log10_par("p", &vals, bins, &pool),
                Histogram::log10("p", &vals, bins)
            );
        }

        /// Bin conservation: every finite value lands in exactly one bin.
        #[test]
        fn counts_conserve_values(
            vals in proptest::collection::vec(-1e6f64..1e6, 0..200),
            bins in 1usize..30,
        ) {
            let h = Histogram::linear("p", &vals, bins);
            prop_assert_eq!(h.total(), vals.len());
            prop_assert_eq!(h.counts.len(), bins);
        }

        #[test]
        fn log_counts_conserve_positive_values(
            vals in proptest::collection::vec(1e-3f64..1e9, 1..200),
            bins in 1usize..30,
        ) {
            let h = Histogram::log10("p", &vals, bins);
            prop_assert_eq!(h.total(), vals.len());
        }
    }

    /// Sketch-vs-exact conformance: every per-bin count is within the
    /// documented `2εn` bound (plus edge-tie slop) of the exact build.
    #[test]
    fn sketch_histogram_within_error_bound() {
        let eps = 0.01;
        let n = 20_000usize;
        // Distinct, irrationally-spaced values so no value lands
        // exactly on a bin edge (ties go the other way in the sketch).
        let vals: Vec<f64> = (0..n)
            .map(|i| ((i as f64 * 0.754_877_666_2).fract()) * 1_000.0 + i as f64 * 1e-7)
            .collect();
        let mut sk = QuantileSketch::new(eps);
        for &v in &vals {
            sk.update(v);
        }
        for bins in [1usize, 5, 16] {
            let exact = Histogram::linear("c", &vals, bins);
            let approx = Histogram::from_sketch("c", &sk, bins, false);
            assert_eq!(approx.edges, exact.edges);
            assert_eq!(approx.n, exact.n);
            assert_eq!(approx.total(), exact.total());
            let tol = (2.0 * eps * n as f64).ceil() as i64 + 1;
            for (a, e) in approx.counts.iter().zip(&exact.counts) {
                let diff = (*a as i64 - *e as i64).abs();
                assert!(diff <= tol, "bins={bins}: |{a} - {e}| > {tol}");
            }
        }
    }

    /// Log-binned sketch histograms obey the same bound, and an empty
    /// sketch mirrors the exact build's empty shape.
    #[test]
    fn sketch_histogram_log_and_empty() {
        let eps = 0.01;
        let vals: Vec<f64> = (0..10_000)
            .map(|i| 10f64.powf((i as f64 * 0.618_033_988_7).fract() * 6.0 - 2.0))
            .collect();
        let mut sk = QuantileSketch::new(eps);
        for &v in &vals {
            sk.update(v);
        }
        let exact = Histogram::log10("l", &vals, 12);
        let approx = Histogram::from_sketch("l", &sk, 12, true);
        assert_eq!(approx.total(), exact.total());
        let tol = (2.0 * eps * vals.len() as f64).ceil() as i64 + 1;
        for (a, e) in approx.counts.iter().zip(&exact.counts) {
            assert!((*a as i64 - *e as i64).abs() <= tol);
        }

        let empty = QuantileSketch::new(eps);
        assert_eq!(
            Histogram::from_sketch("e", &empty, 7, false),
            Histogram::linear("e", &[], 7)
        );
    }
}
