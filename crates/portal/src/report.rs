//! The consulting-staff report (§I-B).
//!
//! "TACC Stats also includes capabilities for generating several
//! different reports including a report giving a resource use profile
//! for every job run on Stampede and Lonestar 5. These reports are
//! available to the consulting staff of TACC to assist in diagnosing
//! problems which may have occurred during execution of a job."
//!
//! [`daily_report`] summarizes one day of the jobs table: volume,
//! node-hours, top users, the flag breakdown the §V-A rules produce, and
//! resource-use quantiles — the at-a-glance page a consultant starts
//! from before drilling into a job's detail view.

use crate::render;
use crate::search::SearchSpec;
use std::collections::BTreeMap;
use tacc_jobdb::Table;

/// Summary statistics of one day.
#[derive(Clone, Debug, Default)]
pub struct DailySummary {
    /// Jobs that started on the day.
    pub n_jobs: usize,
    /// Total node-hours consumed.
    pub node_hours: f64,
    /// Distinct users.
    pub n_users: usize,
    /// Jobs carrying at least one flag.
    pub n_flagged: usize,
    /// Flag name → count.
    pub flag_counts: BTreeMap<String, usize>,
    /// (user, node-hours) descending, top 5.
    pub top_users: Vec<(String, f64)>,
    /// Mean CPU_Usage over jobs reporting it.
    pub mean_cpu: Option<f64>,
}

/// Compute the summary for jobs starting in `[day_start, day_start+86400)`.
pub fn daily_summary(table: &Table, day_start: i64) -> DailySummary {
    let list = match (SearchSpec {
        start_after: Some(day_start),
        start_before: Some(day_start + 86_400),
        ..SearchSpec::default()
    })
    .run(table)
    {
        Ok(l) => l,
        Err(_) => return DailySummary::default(),
    };
    let users = list.column_str("user");
    let mut n_users: Vec<&String> = users.iter().collect();
    n_users.sort();
    n_users.dedup();
    let mut flag_counts: BTreeMap<String, usize> = BTreeMap::new();
    for f in list.column_str("flags") {
        for name in f.split(',').filter(|s| !s.is_empty()) {
            *flag_counts.entry(name.to_string()).or_default() += 1;
        }
    }
    let mut per_user: BTreeMap<String, f64> = BTreeMap::new();
    let hours = list.column("node_hours");
    for (u, h) in users.iter().zip(&hours) {
        *per_user.entry(u.clone()).or_default() += h;
    }
    let mut top_users: Vec<(String, f64)> = per_user.into_iter().collect();
    top_users.sort_by(|a, b| b.1.total_cmp(&a.1));
    top_users.truncate(5);
    DailySummary {
        n_jobs: list.len(),
        node_hours: hours.iter().sum(),
        n_users: n_users.len(),
        n_flagged: list.flagged().len(),
        flag_counts,
        top_users,
        mean_cpu: list.avg("CPU_Usage"),
    }
}

/// Render the consulting report for one day.
pub fn daily_report(table: &Table, day_start: i64) -> String {
    let s = daily_summary(table, day_start);
    let mut out = format!(
        "=== Daily resource-use report (day starting {day_start}) ===\n\
         jobs started : {}\n\
         node hours   : {:.1}\n\
         users        : {}\n\
         mean CPU use : {}\n\
         flagged jobs : {} ({:.1}%)\n",
        s.n_jobs,
        s.node_hours,
        s.n_users,
        s.mean_cpu
            .map(|c| format!("{:.0}%", c * 100.0))
            .unwrap_or_else(|| "-".to_string()),
        s.n_flagged,
        if s.n_jobs > 0 {
            100.0 * s.n_flagged as f64 / s.n_jobs as f64
        } else {
            0.0
        },
    );
    if !s.flag_counts.is_empty() {
        out.push_str("flags:\n");
        for (name, n) in &s.flag_counts {
            out.push_str(&format!("  {name:<20} {n}\n"));
        }
    }
    if !s.top_users.is_empty() {
        out.push_str("top users by node-hours:\n");
        let rows: Vec<Vec<String>> = s
            .top_users
            .iter()
            .map(|(u, h)| vec![u.clone(), format!("{h:.1}")])
            .collect();
        out.push_str(&render::table(&["user", "node-hours"], &rows));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tacc_jobdb::Database;
    use tacc_metrics::flags::FlagRules;
    use tacc_metrics::ingest::{ingest_job, JOBS_TABLE};
    use tacc_metrics::table1::{JobMetrics, MetricId};
    use tacc_scheduler::job::{Job, JobStatus, QueueName};
    use tacc_simnode::apps::AppModel;
    use tacc_simnode::topology::NodeTopology;
    use tacc_simnode::{SimDuration, SimTime};

    fn mk_job(id: u64, user: &str, start: u64, hours: u64, nodes: usize) -> Job {
        let mut rng = StdRng::seed_from_u64(id);
        let app = AppModel::wrf().instantiate(&mut rng, nodes, 16, &NodeTopology::stampede());
        Job {
            id,
            user: user.into(),
            uid: 5000,
            account: "TG".into(),
            job_name: "r".into(),
            exec: "wrf.exe".into(),
            queue: QueueName::Normal,
            n_nodes: nodes,
            wayness: 16,
            submit: SimTime::from_secs(start),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(start) + SimDuration::from_hours(hours),
            status: JobStatus::Completed,
            nodes: (0..nodes).collect(),
            idle_nodes: 0,
            app,
        }
    }

    fn db() -> Database {
        let rules = FlagRules::default();
        let mut db = Database::new();
        let mut clean = JobMetrics::new();
        clean.set(MetricId::CpuUsage, 0.9);
        clean.set(MetricId::VecPercent, 50.0);
        let mut stormy = JobMetrics::new();
        stormy.set(MetricId::CpuUsage, 0.6);
        stormy.set(MetricId::MetaDataRate, 500_000.0);
        // Day 0: two users, one flagged job.
        ingest_job(
            &mut db,
            &mk_job(1, "alice", 3600, 2, 4),
            &clean,
            &rules,
            34.0,
        );
        ingest_job(
            &mut db,
            &mk_job(2, "bob", 7200, 1, 2),
            &stormy,
            &rules,
            34.0,
        );
        // Day 1: one job, out of the day-0 report window.
        ingest_job(
            &mut db,
            &mk_job(3, "alice", 90_000, 1, 1),
            &clean,
            &rules,
            34.0,
        );
        db
    }

    #[test]
    fn summary_counts_one_day_only() {
        let db = db();
        let t = db.table(JOBS_TABLE).unwrap();
        let s = daily_summary(t, 0);
        assert_eq!(s.n_jobs, 2);
        assert_eq!(s.n_users, 2);
        assert_eq!(s.node_hours, 8.0 + 2.0);
        assert_eq!(s.n_flagged, 1);
        assert_eq!(s.flag_counts.get("HighMetadataRate"), Some(&1));
        assert_eq!(s.top_users[0], ("alice".to_string(), 8.0));
        let day1 = daily_summary(t, 86_400);
        assert_eq!(day1.n_jobs, 1);
        assert_eq!(day1.n_flagged, 0);
    }

    #[test]
    fn report_renders() {
        let db = db();
        let t = db.table(JOBS_TABLE).unwrap();
        let r = daily_report(t, 0);
        assert!(r.contains("jobs started : 2"));
        assert!(r.contains("HighMetadataRate"));
        assert!(r.contains("alice"));
        assert!(r.contains("flagged jobs : 1 (50.0%)"));
    }

    #[test]
    fn empty_day_is_graceful() {
        let db = db();
        let t = db.table(JOBS_TABLE).unwrap();
        let s = daily_summary(t, 10 * 86_400);
        assert_eq!(s.n_jobs, 0);
        let r = daily_report(t, 10 * 86_400);
        assert!(r.contains("jobs started : 0"));
    }
}
