//! # tacc-portal — the web-portal analogue
//!
//! §IV-B of the paper describes a Django portal over the PostgreSQL
//! database; its artefacts are what this crate regenerates, rendered as
//! text instead of HTML (the analyses are identical; only the medium
//! differs):
//!
//! * [`search`] — the front page (Fig. 3): metadata filters plus up to
//!   three *Search fields* (`metric name` + comparison suffix +
//!   threshold), returning the job list with its metadata columns and
//!   the flagged-job sublist.
//! * [`hist`] — the automatic four-panel histogram every query returns
//!   (Fig. 4): jobs versus runtime, nodes, queue wait time, and maximum
//!   metadata requests.
//! * [`detail`] — the per-job detail view (Fig. 5): six per-node
//!   time-series panels (GFLOPS, memory bandwidth, memory usage, Lustre
//!   bandwidth, Infiniband traffic, CPU user fraction) plus the
//!   metric pass/fail report.
//! * [`render`] — text tables and sparklines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detail;
pub mod hist;
pub mod render;
pub mod report;
pub mod search;

pub use hist::Histogram;
pub use search::{JobList, SearchSpec};
