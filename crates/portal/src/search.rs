//! The portal front page (Fig. 3): metadata filters plus up to three
//! threshold search fields, producing the job list, the flagged
//! sublist, and the automatic Fig. 4 histograms.

use crate::hist::Fig4Panels;
use crate::render;
use tacc_jobdb::table::{Row, Table, TableError};
use tacc_jobdb::{Filter, Query, Value};
use tacc_metrics::sketch::SketchRegistry;
use tacc_metrics::{Flag, MetricId};
use tacc_simnode::pool::WorkerPool;

/// Maximum number of metric search fields, matching the portal ("up to
/// three Search fields").
pub const MAX_SEARCH_FIELDS: usize = 3;

/// A portal search: metadata filters plus metric threshold fields.
#[derive(Clone, Debug, Default)]
pub struct SearchSpec {
    /// Executable name filter.
    pub exec: Option<String>,
    /// Username filter.
    pub user: Option<String>,
    /// Queue filter.
    pub queue: Option<String>,
    /// Completion-status filter.
    pub status: Option<String>,
    /// Only jobs starting at/after this Unix time.
    pub start_after: Option<i64>,
    /// Only jobs starting before this Unix time.
    pub start_before: Option<i64>,
    /// Only jobs with at least this runtime (seconds) — the WRF query
    /// of §V-A filters "over 10 minutes in runtime".
    pub min_runtime_secs: Option<i64>,
    /// Metric search fields: Django-style keyword (e.g.
    /// `MetaDataRate__gte`) plus threshold.
    pub fields: Vec<(String, f64)>,
}

impl SearchSpec {
    /// Add a metric search field. Panics beyond [`MAX_SEARCH_FIELDS`]
    /// (the portal form physically has three).
    pub fn field(mut self, keyword: &str, value: f64) -> Self {
        assert!(
            self.fields.len() < MAX_SEARCH_FIELDS,
            "the portal offers at most {MAX_SEARCH_FIELDS} search fields"
        );
        self.fields.push((keyword.to_string(), value));
        self
    }

    /// Add a `metric >= threshold` field whose threshold defaults to a
    /// population quantile — answered by the ingest-time
    /// [`SketchRegistry`] (rank error ≤ εn) instead of a full column
    /// rescan. No-op if the metric has no data yet.
    pub fn field_above_quantile(self, id: MetricId, phi: f64, sketches: &SketchRegistry) -> Self {
        match sketches.quantile(id, phi) {
            Some(threshold) => self.field(&format!("{}__gte", id.label()), threshold),
            None => self,
        }
    }

    /// The conjunction of predicates this spec describes — the single
    /// source of truth shared by [`SearchSpec::run`] and
    /// [`SearchSpec::run_par`].
    fn filter(&self) -> Filter {
        let mut f = Filter::new();
        if let Some(e) = &self.exec {
            f = f.kw("exec", e.as_str());
        }
        if let Some(u) = &self.user {
            f = f.kw("user", u.as_str());
        }
        if let Some(qu) = &self.queue {
            f = f.kw("queue", qu.as_str());
        }
        if let Some(s) = &self.status {
            f = f.kw("status", s.as_str());
        }
        if let Some(t) = self.start_after {
            f = f.kw("start__gte", t);
        }
        if let Some(t) = self.start_before {
            f = f.kw("start__lt", t);
        }
        if let Some(r) = self.min_runtime_secs {
            f = f.kw("run_time__gte", r);
        }
        for (kw, v) in &self.fields {
            f = f.kw(kw, *v);
        }
        f
    }

    /// Run the search against a jobs table.
    pub fn run<'t>(&self, table: &'t Table) -> Result<JobList<'t>, TableError> {
        let rows = Query::new(table)
            .filter(self.filter())
            .order_by("jobid", false)
            .rows()?;
        Ok(JobList { table, rows })
    }

    /// Run the search as a parallel partition scan: the filter is
    /// compiled once, the table's rows are split into contiguous chunks
    /// scanned on `pool`, and the per-chunk matches are concatenated
    /// (chunks are contiguous, so row order is preserved) before the
    /// same jobid ordering [`SearchSpec::run`] applies. Returns exactly
    /// the rows `run` would.
    pub fn run_par<'t>(
        &self,
        table: &'t Table,
        pool: &WorkerPool,
    ) -> Result<JobList<'t>, TableError> {
        let compiled = self.filter().compile(table)?;
        let jobid = table
            .schema()
            .index_of("jobid")
            .ok_or_else(|| TableError::NoSuchColumn("jobid".to_string()))?;
        let all = table.rows();
        let parts = pool.workers().max(1);
        let chunk = all.len().div_ceil(parts).max(1);
        let picked = pool.map_parts(parts, |i, _scratch| {
            let start = (i * chunk).min(all.len());
            let end = ((i + 1) * chunk).min(all.len());
            all[start..end]
                .iter()
                .filter(|r| compiled.matches(r))
                .collect::<Vec<&'t Row>>()
        });
        let mut rows: Vec<&'t Row> = picked.into_iter().flatten().collect();
        // Stable sort on jobid, identical to `order_by("jobid", false)`.
        rows.sort_by(|a, b| a.get(jobid).total_cmp(b.get(jobid)));
        Ok(JobList { table, rows })
    }
}

/// A search result: references into the jobs table.
pub struct JobList<'t> {
    table: &'t Table,
    rows: Vec<&'t Row>,
}

impl<'t> JobList<'t> {
    /// Number of jobs found.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no jobs matched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The matched rows.
    pub fn rows(&self) -> &[&'t Row] {
        &self.rows
    }

    /// One numeric column over the result (nulls skipped).
    pub fn column(&self, name: &str) -> Vec<f64> {
        let Some(idx) = self.table.schema().index_of(name) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter_map(|r| r.get(idx).as_f64())
            .collect()
    }

    /// One string column over the result.
    pub fn column_str(&self, name: &str) -> Vec<String> {
        let Some(idx) = self.table.schema().index_of(name) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter_map(|r| r.get(idx).as_str().map(str::to_string))
            .collect()
    }

    /// Mean of a numeric column (the §V-B ORM aggregation).
    pub fn avg(&self, name: &str) -> Option<f64> {
        let v = self.column(name);
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Rows whose `"flags"` column passes `pred` — the shared core of
    /// [`JobList::flagged`] and [`JobList::flagged_with`]: the column
    /// index is resolved once per call, here and nowhere else.
    fn rows_where_flags(&self, pred: impl Fn(&str) -> bool) -> Vec<&'t Row> {
        let Some(idx) = self.table.schema().index_of("flags") else {
            return Vec::new();
        };
        self.rows
            .iter()
            .copied()
            .filter(|r| r.get(idx).as_str().map(&pred).unwrap_or(false))
            .collect()
    }

    /// The sublist of jobs with at least one automatic flag ("Every
    /// search also returns a sublist of jobs that have been flagged").
    pub fn flagged(&self) -> Vec<&'t Row> {
        self.rows_where_flags(|s| !s.is_empty())
    }

    /// Jobs carrying a specific flag. Typed: a nonexistent flag name
    /// can no longer silently match nothing.
    pub fn flagged_with(&self, flag: Flag) -> Vec<&'t Row> {
        self.rows_where_flags(|s| s.split(',').any(|f| f == flag.name()))
    }

    /// Jobs carrying a specific flag, by raw name.
    #[deprecated(note = "use the `Flag`-typed `flagged_with`; a typo'd \
                         string silently matches nothing")]
    pub fn flagged_with_str(&self, flag: &str) -> Vec<&'t Row> {
        self.rows_where_flags(|s| s.split(',').any(|f| f == flag))
    }

    /// The automatic Fig. 4 histogram set for this result.
    pub fn fig4(&self) -> Fig4Panels {
        let hours = |secs: Vec<f64>| -> Vec<f64> { secs.iter().map(|s| s / 3600.0).collect() };
        Fig4Panels::new(
            &hours(self.column("run_time")),
            &self.column("nodes"),
            &hours(self.column("queue_wait")),
            &self.column("MetaDataRate"),
        )
    }

    /// [`JobList::fig4`] with each panel built as a parallel partition
    /// scan on `pool`. Bit-identical to the sequential panels.
    pub fn fig4_par(&self, pool: &WorkerPool) -> Fig4Panels {
        let hours = |secs: Vec<f64>| -> Vec<f64> { secs.iter().map(|s| s / 3600.0).collect() };
        Fig4Panels::new_par(
            &hours(self.column("run_time")),
            &self.column("nodes"),
            &hours(self.column("queue_wait")),
            &self.column("MetaDataRate"),
            pool,
        )
    }

    /// Render the job list with the portal's metadata columns.
    pub fn render(&self, limit: usize) -> String {
        let header = [
            "JobID", "User", "Exec", "Start", "End", "Run(h)", "Queue", "Status", "Way", "Nodes",
            "NodeHrs", "Flags",
        ];
        let idx = |n: &str| self.table.schema().index_of(n);
        let cols: Vec<Option<usize>> = [
            "jobid",
            "user",
            "exec",
            "start",
            "end",
            "run_time",
            "queue",
            "status",
            "wayness",
            "nodes",
            "node_hours",
            "flags",
        ]
        .iter()
        .map(|n| idx(n))
        .collect();
        let mut rows = Vec::new();
        for r in self.rows.iter().take(limit) {
            let cell = |i: usize| -> String {
                match cols[i] {
                    Some(c) => match r.get(c) {
                        Value::Float(f) => render::num(*f),
                        v if i == 5 => {
                            // run_time in hours
                            v.as_f64()
                                .map(|s| format!("{:.2}", s / 3600.0))
                                .unwrap_or_default()
                        }
                        v => v.to_string(),
                    },
                    None => String::new(),
                }
            };
            rows.push((0..header.len()).map(cell).collect::<Vec<String>>());
        }
        let mut out = format!("{} jobs matched\n", self.rows.len());
        out.push_str(&render::table(&header, &rows));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tacc_jobdb::Database;
    use tacc_metrics::flags::FlagRules;
    use tacc_metrics::ingest::{ingest_job, JOBS_TABLE};
    use tacc_metrics::table1::{JobMetrics, MetricId};
    use tacc_scheduler::job::{Job, JobStatus, QueueName};
    use tacc_simnode::apps::AppModel;
    use tacc_simnode::topology::NodeTopology;
    use tacc_simnode::{SimDuration, SimTime};

    fn mk_job(id: u64, user: &str, exec: &str, start: u64, runtime: u64) -> Job {
        let mut rng = StdRng::seed_from_u64(id);
        let app = AppModel::wrf().instantiate(&mut rng, 2, 16, &NodeTopology::stampede());
        Job {
            id,
            user: user.into(),
            uid: 5000,
            account: "TG".into(),
            job_name: "j".into(),
            exec: exec.into(),
            queue: QueueName::Normal,
            n_nodes: 2,
            wayness: 16,
            submit: SimTime::from_secs(start.saturating_sub(300)),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(start) + SimDuration::from_secs(runtime),
            status: JobStatus::Completed,
            nodes: vec![0, 1],
            idle_nodes: 0,
            app,
        }
    }

    fn db_with_jobs() -> Database {
        let mut db = Database::new();
        let rules = FlagRules::default();
        let mut m1 = JobMetrics::new();
        m1.set(MetricId::MetaDataRate, 3900.0);
        m1.set(MetricId::CpuUsage, 0.80);
        ingest_job(
            &mut db,
            &mk_job(1, "alice", "wrf.exe", 1000, 7200),
            &m1,
            &rules,
            34.0,
        );
        let mut m2 = JobMetrics::new();
        m2.set(MetricId::MetaDataRate, 563_905.0);
        m2.set(MetricId::CpuUsage, 0.67);
        ingest_job(
            &mut db,
            &mk_job(2, "bob", "wrf.exe", 2000, 3600),
            &m2,
            &rules,
            34.0,
        );
        let mut m3 = JobMetrics::new();
        m3.set(MetricId::CpuUsage, 0.95);
        ingest_job(
            &mut db,
            &mk_job(3, "carol", "namd2", 3000, 300),
            &m3,
            &rules,
            34.0,
        );
        db
    }

    #[test]
    fn metadata_and_field_search() {
        let db = db_with_jobs();
        let t = db.table(JOBS_TABLE).unwrap();
        let list = SearchSpec {
            exec: Some("wrf.exe".into()),
            min_runtime_secs: Some(600),
            ..SearchSpec::default()
        }
        .field("MetaDataRate__gte", 10_000.0)
        .run(t)
        .unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list.column_str("user"), vec!["bob"]);
    }

    #[test]
    fn flagged_sublist() {
        let db = db_with_jobs();
        let t = db.table(JOBS_TABLE).unwrap();
        let all = SearchSpec::default().run(t).unwrap();
        assert_eq!(all.len(), 3);
        let flagged = all.flagged();
        assert_eq!(flagged.len(), 1);
        assert_eq!(all.flagged_with(Flag::HighMetadataRate).len(), 1);
        assert_eq!(all.flagged_with(Flag::HighGigE).len(), 0);
        // The deprecated string shim matches the typed API.
        #[allow(deprecated)]
        {
            assert_eq!(all.flagged_with_str("HighMetadataRate").len(), 1);
            assert_eq!(all.flagged_with_str("HighGigEE-typo").len(), 0);
        }
    }

    #[test]
    fn aggregation_and_histograms() {
        let db = db_with_jobs();
        let t = db.table(JOBS_TABLE).unwrap();
        let wrf = SearchSpec {
            exec: Some("wrf.exe".into()),
            ..SearchSpec::default()
        }
        .run(t)
        .unwrap();
        let avg = wrf.avg("CPU_Usage").unwrap();
        assert!((avg - 0.735).abs() < 1e-9);
        let fig4 = wrf.fig4();
        assert_eq!(fig4.runtime.total(), 2);
        assert_eq!(fig4.metadata_reqs.total(), 2);
    }

    #[test]
    fn render_shows_metadata_columns() {
        let db = db_with_jobs();
        let t = db.table(JOBS_TABLE).unwrap();
        let out = SearchSpec::default().run(t).unwrap().render(10);
        assert!(out.contains("3 jobs matched"));
        assert!(out.contains("alice"));
        assert!(out.contains("wrf.exe"));
        assert!(out.contains("HighMetadataRate"));
    }

    #[test]
    #[should_panic(expected = "at most 3")]
    fn more_than_three_fields_panics() {
        let _ = SearchSpec::default()
            .field("a__gte", 1.0)
            .field("b__gte", 1.0)
            .field("c__gte", 1.0)
            .field("d__gte", 1.0);
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let db = db_with_jobs();
        let t = db.table(JOBS_TABLE).unwrap();
        let specs = [
            SearchSpec::default(),
            SearchSpec {
                exec: Some("wrf.exe".into()),
                min_runtime_secs: Some(600),
                ..SearchSpec::default()
            }
            .field("MetaDataRate__gte", 10_000.0),
            SearchSpec {
                start_after: Some(1500),
                start_before: Some(2500),
                ..SearchSpec::default()
            },
            SearchSpec {
                user: Some("nobody".into()),
                ..SearchSpec::default()
            },
        ];
        for workers in [1usize, 4] {
            let pool = WorkerPool::new(workers);
            for spec in &specs {
                let seq = spec.run(t).unwrap();
                let par = spec.run_par(t, &pool).unwrap();
                assert_eq!(seq.rows(), par.rows(), "workers={workers}");
                assert_eq!(seq.flagged(), par.flagged());
            }
        }
    }

    #[test]
    fn parallel_search_reports_bad_columns() {
        let db = db_with_jobs();
        let t = db.table(JOBS_TABLE).unwrap();
        let pool = WorkerPool::new(2);
        let err = SearchSpec::default()
            .field("NoSuchMetric__gte", 1.0)
            .run_par(t, &pool);
        assert!(err.is_err());
    }

    #[test]
    fn parallel_fig4_matches_sequential() {
        let db = db_with_jobs();
        let t = db.table(JOBS_TABLE).unwrap();
        let list = SearchSpec::default().run(t).unwrap();
        let seq = list.fig4();
        for workers in [1usize, 4] {
            let pool = WorkerPool::new(workers);
            let par = list.fig4_par(&pool);
            assert_eq!(seq.runtime, par.runtime);
            assert_eq!(seq.nodes, par.nodes);
            assert_eq!(seq.queue_wait, par.queue_wait);
            assert_eq!(seq.metadata_reqs, par.metadata_reqs);
        }
    }

    #[test]
    fn date_range_filters() {
        let db = db_with_jobs();
        let t = db.table(JOBS_TABLE).unwrap();
        let list = SearchSpec {
            start_after: Some(1500),
            start_before: Some(2500),
            ..SearchSpec::default()
        }
        .run(t)
        .unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list.column_str("user"), vec!["bob"]);
    }
}
