//! The assembled monitoring system.
//!
//! [`MonitoringSystem`] wires the whole paper together: a simulated
//! cluster, the batch scheduler with prolog/epilog hooks, a per-node
//! collector in either §III-A operation mode, the broker + consumer of
//! daemon mode, the central archive, the streaming Table I metric
//! pipeline, the job database the portal queries, the optional §VI-A
//! time-series mirror, and the §VI-B online analyzer with automated job
//! suspension.

use crate::config::{Mode, SystemConfig};
use crate::online::{AdaptiveConfig, Alert, OnlineAnalyzer, OnlineConfig};
use crate::pool::WorkerPool;
use bytes::Bytes;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use tacc_broker::Broker;
use tacc_collect::consumer::StatsConsumer;
use tacc_collect::cron::{CronCollector, CronConfig};
use tacc_collect::daemon::{LocalPublisher, Publisher, TaccStatsd};
use tacc_collect::discovery::{discover, BuildOptions};
use tacc_collect::engine::{OverheadAccount, Sampler};
use tacc_collect::record::{HostHeader, Sample};
use tacc_collect::spool::SpoolConfig;
use tacc_collect::Archive;
use tacc_jobdb::Database;
use tacc_metrics::accum::JobAccum;
use tacc_metrics::flags::{FlagContext, FlagRules};
use tacc_metrics::ingest::ingest_job;
use tacc_metrics::sketch::SketchRegistry;
use tacc_scheduler::job::{JobId, JobRequest, JobStatus};
use tacc_scheduler::sched::{SchedEvent, Scheduler};
use tacc_scheduler::xalt::XaltDb;
use tacc_simnode::counter::wrapping_delta;
use tacc_simnode::faults::{fault_path, DeviceFaultKind, FaultPlan, ReadFault, ReadFaultMode};
use tacc_simnode::lustre_server::MdsModel;
use tacc_simnode::pseudofs::NodeFs;
use tacc_simnode::schema::DeviceType;
use tacc_simnode::workload::NodeDemand;
use tacc_simnode::{SimClock, SimCluster, SimDuration, SimNode, SimTime};
use tacc_tsdb::{SeriesKey, TsDb};

/// Mirrors selected per-host rates into the time-series database
/// (§VI-A): cumulative counters become bucketed rate series tagged
/// (host, device type, device name, event).
struct TsdbMirror {
    prev: HashMap<SeriesKey, (u64, u64)>,
}

impl TsdbMirror {
    fn new() -> TsdbMirror {
        TsdbMirror {
            prev: HashMap::new(),
        }
    }

    fn feed(&mut self, header: &HostHeader, sample: &Sample, tsdb: &TsDb) {
        let t = sample.time.as_secs();
        let host = header.hostname.as_str();
        let mut track = |dt: DeviceType, event: &str, value: u64| {
            let key = SeriesKey::new(host, dt.name(), "all", event);
            if let Some((pt, pv)) = self.prev.get(&key).copied() {
                let dtime = t.saturating_sub(pt) as f64;
                if dtime > 0.0 {
                    let rate = wrapping_delta(pv, value, 64) as f64 / dtime;
                    tsdb.insert(key.clone(), t, rate);
                }
            }
            self.prev.insert(key, (t, value));
        };
        let sum_of = |dt: DeviceType, ev: &str| -> u64 {
            let Some(schema) = header.schemas.get(&dt) else {
                return 0;
            };
            let Some(i) = schema.index_of(ev) else {
                return 0;
            };
            sample.devices_of(dt).map(|r| r.values[i]).sum()
        };
        if header.schemas.contains_key(&DeviceType::Mdc) {
            track(DeviceType::Mdc, "reqs", sum_of(DeviceType::Mdc, "reqs"));
            track(DeviceType::Mdc, "wait", sum_of(DeviceType::Mdc, "wait"));
        }
        if header.schemas.contains_key(&DeviceType::Llite) {
            track(
                DeviceType::Llite,
                "open_close",
                sum_of(DeviceType::Llite, "open") + sum_of(DeviceType::Llite, "close"),
            );
        }
        if header.schemas.contains_key(&DeviceType::Lnet) {
            track(
                DeviceType::Lnet,
                "bytes",
                sum_of(DeviceType::Lnet, "tx_bytes") + sum_of(DeviceType::Lnet, "rx_bytes"),
            );
        }
        track(
            DeviceType::Cpustat,
            "user",
            sum_of(DeviceType::Cpustat, "user"),
        );
    }
}

enum NodeCollectors {
    Cron(Vec<CronCollector>),
    Daemon(Vec<TaccStatsd>),
}

/// Fault-injecting broker transport: consults the [`FaultPlan`] for
/// deterministic per-message network drops. A dropped *request* never
/// reaches the broker; a dropped *acknowledgement* is delivered but the
/// sender sees a failure and will replay it later (the at-least-once
/// duplicate source).
struct ChaosPublisher {
    broker: Broker,
    plan: FaultPlan,
    host: String,
}

impl Publisher for ChaosPublisher {
    fn publish(&mut self, queue: &str, routing_key: &str, seq: u64, payload: Bytes) -> bool {
        if self.plan.drops_request(&self.host, seq) {
            return false;
        }
        let ok = self.broker.publish(queue, routing_key, payload);
        if ok && self.plan.drops_ack(&self.host, seq) {
            return false;
        }
        ok
    }
}

/// End-to-end delivery reconciliation for daemon mode: every sequence
/// number any node ever assigned is classified into exactly one bucket,
/// so `collected == delivered + dropped + lost + in_spool` holds by
/// construction and the interesting assertions are about which bucket
/// each fate lands in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeliveryReport {
    /// Samples collected across all nodes (== sequence numbers issued).
    pub collected: u64,
    /// Archived by the consumer (at least once).
    pub delivered: u64,
    /// Evicted from a full spool — bounded-buffer overflow, accounted.
    pub dropped: u64,
    /// Wiped from a spool by a node crash (or otherwise vanished).
    pub lost: u64,
    /// Still spooled awaiting replay.
    pub in_spool: u64,
    /// Redelivered duplicates the consumer skipped.
    pub duplicates: u64,
    /// Sequence-gap events the consumer observed on arrival.
    pub gap_events: u64,
    /// Device instances missing from samples due to failed pseudofs
    /// reads (cumulative across nodes).
    pub degraded_reads: u64,
    /// Unique messages the consumer processed.
    pub received: u64,
    /// Unparseable messages routed to the dead-letter queue.
    pub dead_lettered: u64,
}

/// The full monitoring system over a simulated cluster.
pub struct MonitoringSystem {
    cfg: SystemConfig,
    clock: SimClock,
    cluster: SimCluster,
    scheduler: Scheduler,
    collectors: NodeCollectors,
    headers: Vec<HostHeader>,
    archive: Arc<Archive>,
    broker: Option<Broker>,
    consumer: Option<StatsConsumer>,
    /// Worker pool for the parallel drain/query paths; `None` keeps
    /// every stage on the caller thread.
    pool: Option<Arc<WorkerPool>>,
    db: Database,
    tsdb: Option<TsDb>,
    /// Recovery accounting from opening a durable tsdb
    /// ([`SystemConfig::tsdb_dir`]); `None` for in-memory stores.
    tsdb_recovery: Option<tacc_tsdb::RecoveryReport>,
    /// Why a requested durable tsdb could not be opened (the system
    /// falls back to an in-memory mirror rather than refusing to run).
    tsdb_open_error: Option<String>,
    mirror: TsdbMirror,
    online: Option<OnlineAnalyzer>,
    /// Automatically cancel jobs the online analyzer blames.
    pub auto_suspend: bool,
    /// Adaptive per-node sampling policy, if enabled.
    adaptive: Option<AdaptiveConfig>,
    /// Current sampling cadence per node (daemon mode).
    cadence: Vec<SimDuration>,
    /// When each node's cadence last changed (backoff timer).
    cadence_changed: Vec<SimTime>,
    /// Every cadence change: (when, node index, new interval).
    cadence_log: Vec<(SimTime, usize, SimDuration)>,
    /// Per-metric quantile sketches fed at job ingest (portal
    /// histogram/threshold defaults read these instead of rescanning
    /// columns).
    sketches: SketchRegistry,
    rules: FlagRules,
    pending: VecDeque<(SimTime, JobRequest)>,
    accums: HashMap<JobId, JobAccum>,
    node_assign: Vec<Option<(JobId, usize)>>,
    job_pids: HashMap<JobId, Vec<(usize, u32)>>,
    /// Jobs ingested into the database so far.
    pub ingested: usize,
    suspended: Vec<JobId>,
    xalt: XaltDb,
    /// Shared metadata-server latency model (§VI-A interference).
    pub mds: MdsModel,
    fault_plan: Option<FaultPlan>,
    /// Which nodes the fault plan currently holds down (to fire
    /// crash/reboot exactly once per window edge).
    plan_node_down: Vec<bool>,
}

impl MonitoringSystem {
    /// Build the system (cluster, scheduler, per-node collectors, and —
    /// in daemon mode — broker and consumer).
    pub fn new(cfg: SystemConfig) -> MonitoringSystem {
        let clock = SimClock::starting_at(cfg.start);
        let mut nodes = Vec::with_capacity(cfg.total_nodes());
        for i in 0..cfg.n_nodes {
            nodes.push(SimNode::new(
                format!("{}-{i:04}", cfg.host_prefix),
                cfg.topology.clone(),
            ));
        }
        for i in 0..cfg.n_largemem {
            nodes.push(SimNode::new(
                format!("{}-lm{i:02}", cfg.host_prefix),
                cfg.largemem_topology.clone(),
            ));
        }
        // Discover and build a sampler per node.
        let mut samplers = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let fs = NodeFs::new(node);
            let dcfg = discover(&fs, BuildOptions::default()).expect("fresh node discovers");
            samplers.push(Sampler::new(&node.hostname, &dcfg));
        }
        let headers: Vec<HostHeader> = samplers.iter().map(|s| s.header().clone()).collect();
        let cluster = SimCluster::from_nodes(clock.clone(), nodes);
        let scheduler = Scheduler::new(cfg.n_nodes, cfg.n_largemem);
        let mut broker = None;
        let mut consumer = None;
        let archive = Arc::new(Archive::new());
        let collectors = match &cfg.mode {
            Mode::Cron {
                rotate_second,
                sync_second,
                sync_spread_secs,
            } => NodeCollectors::Cron(
                samplers
                    .into_iter()
                    .enumerate()
                    .map(|(i, s)| {
                        // Deterministic per-node stagger within the window.
                        let offset = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(cfg.seed)
                            % (*sync_spread_secs).max(1);
                        CronCollector::new(
                            s,
                            CronConfig {
                                interval: cfg.interval,
                                rotate_second: *rotate_second,
                                sync_second: sync_second + offset,
                            },
                            cfg.start,
                        )
                    })
                    .collect(),
            ),
            Mode::Daemon { queue } => {
                let b = Broker::new();
                b.declare(queue);
                let mut c = StatsConsumer::new(&b, queue, Arc::clone(&archive))
                    .expect("queue just declared");
                c.set_dead_letter(&format!("{queue}.dead_letter"));
                consumer = Some(c);
                let ds = samplers
                    .into_iter()
                    .map(|s| {
                        TaccStatsd::new(
                            s,
                            cfg.interval,
                            queue,
                            Box::new(LocalPublisher(b.clone())),
                            cfg.start,
                        )
                    })
                    .collect();
                broker = Some(b);
                NodeCollectors::Daemon(ds)
            }
        };
        // The tsdb mirror: in-memory by default; durable (WAL +
        // segment files, crash-recovered on open) when a directory is
        // configured. A durable store that fails to open degrades to
        // in-memory — the monitor must keep running (§III "always
        // on") — with the reason kept for inspection.
        let mut tsdb_recovery = None;
        let mut tsdb_open_error = None;
        let tsdb = if cfg.enable_tsdb {
            match &cfg.tsdb_dir {
                Some(dir) => {
                    let opened = tacc_tsdb::FsVfs::open(dir.clone()).and_then(|vfs| {
                        TsDb::recover(
                            Arc::new(vfs),
                            tacc_tsdb::DEFAULT_SHARDS,
                            tacc_tsdb::DurOptions::default(),
                        )
                    });
                    match opened {
                        Ok((db, report)) => {
                            tsdb_recovery = Some(report);
                            Some(db)
                        }
                        Err(e) => {
                            tsdb_open_error = Some(format!("{}: {e}", dir.display()));
                            Some(TsDb::new())
                        }
                    }
                }
                None => Some(TsDb::new()),
            }
        } else {
            None
        };
        let n_total = cfg.total_nodes();
        let enable_xalt = cfg.enable_xalt;
        MonitoringSystem {
            cfg,
            clock,
            cluster,
            scheduler,
            collectors,
            headers,
            archive,
            broker,
            consumer,
            pool: None,
            db: Database::new(),
            tsdb,
            tsdb_recovery,
            tsdb_open_error,
            mirror: TsdbMirror::new(),
            online: None,
            auto_suspend: false,
            adaptive: None,
            cadence: Vec::new(),
            cadence_changed: Vec::new(),
            cadence_log: Vec::new(),
            sketches: SketchRegistry::default(),
            rules: FlagRules::default(),
            pending: VecDeque::new(),
            accums: HashMap::new(),
            node_assign: vec![None; n_total],
            job_pids: HashMap::new(),
            ingested: 0,
            suspended: Vec::new(),
            xalt: XaltDb::new(enable_xalt),
            mds: MdsModel::default(),
            fault_plan: None,
            plan_node_down: vec![false; n_total],
        }
    }

    /// Install a [`FaultPlan`] (daemon mode only): every daemon's
    /// transport is swapped for a fault-injecting one, and from now on
    /// [`MonitoringSystem::step_once`] consults the plan for broker
    /// outages, node crash/reboot windows, and device degradation.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let NodeCollectors::Daemon(ds) = &mut self.collectors else {
            panic!("fault plans drive the daemon pipeline; use daemon mode");
        };
        let broker = self.broker.as_ref().expect("daemon mode has a broker");
        for (i, d) in ds.iter_mut().enumerate() {
            d.set_publisher(Box::new(ChaosPublisher {
                broker: broker.clone(),
                plan: plan.clone(),
                host: self.headers[i].hostname.to_string(),
            }));
        }
        self.fault_plan = Some(plan);
    }

    /// Reconfigure every daemon's spool (daemon mode only; call before
    /// driving the system).
    pub fn set_spool(&mut self, cfg: SpoolConfig) {
        let NodeCollectors::Daemon(ds) = &mut self.collectors else {
            panic!("spools exist only in daemon mode");
        };
        for (i, d) in ds.iter_mut().enumerate() {
            let seed = self.headers[i]
                .hostname
                .as_str()
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
                });
            d.set_spool_config(cfg, seed)
                .expect("set_spool is called before any message is spooled");
        }
    }

    /// Enable §VI-B online analysis (daemon mode only; cron mode has no
    /// real-time stream to analyze).
    pub fn enable_online(&mut self, cfg: OnlineConfig, auto_suspend: bool) {
        assert!(
            matches!(self.cfg.mode, Mode::Daemon { .. }),
            "online analysis requires the daemon mode's real-time stream"
        );
        self.online = Some(OnlineAnalyzer::new(cfg));
        self.auto_suspend = auto_suspend;
    }

    /// Enable adaptive per-node sampling (§VI-B closing the loop):
    /// after each step, every daemon's cadence is retuned from the
    /// online analyzer's per-node anomaly score — stable nodes back
    /// off toward `cfg.max_interval`, anomalous nodes snap to
    /// `cfg.min_interval`. Requires daemon mode with online analysis
    /// enabled.
    pub fn enable_adaptive(&mut self, cfg: AdaptiveConfig) {
        assert!(
            matches!(self.cfg.mode, Mode::Daemon { .. }),
            "adaptive sampling retunes the daemon schedule; use daemon mode"
        );
        assert!(
            self.online.is_some(),
            "adaptive sampling is driven by the online analyzer; call enable_online first"
        );
        let now = self.clock.now();
        self.cadence = vec![self.cfg.interval; self.headers.len()];
        self.cadence_changed = vec![now; self.headers.len()];
        self.adaptive = Some(cfg);
    }

    /// Current sampling cadence of one node (the configured interval
    /// until adaptive sampling changes it).
    pub fn cadence_of(&self, node_idx: usize) -> SimDuration {
        self.cadence
            .get(node_idx)
            .copied()
            .unwrap_or(self.cfg.interval)
    }

    /// Every adaptive cadence change so far: (when, node, new interval).
    pub fn cadence_log(&self) -> &[(SimTime, usize, SimDuration)] {
        &self.cadence_log
    }

    /// The per-metric quantile sketches maintained at job ingest.
    pub fn sketches(&self) -> &SketchRegistry {
        &self.sketches
    }

    /// Attach a worker pool: the daemon-mode consumer drain fans
    /// per-host streams out across it, and the time-series mirror (if
    /// enabled) runs its dense aggregate folds as parallel per-shard
    /// scans. Results are identical to the sequential path.
    pub fn set_pool(&mut self, pool: Arc<WorkerPool>) {
        if let Some(tsdb) = &mut self.tsdb {
            tsdb.set_pool(Arc::clone(&pool));
        }
        self.pool = Some(pool);
    }

    /// Queue job submissions (time-ordered or not; they are sorted).
    pub fn enqueue_jobs(&mut self, mut jobs: Vec<(SimTime, JobRequest)>) {
        jobs.sort_by_key(|(t, _)| *t);
        for j in jobs {
            self.pending.push_back(j);
        }
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The job database (portal queries run against this).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The central raw-stats archive.
    pub fn archive(&self) -> &Archive {
        &self.archive
    }

    /// The broker (daemon mode only).
    pub fn broker(&self) -> Option<&Broker> {
        self.broker.as_ref()
    }

    /// The time-series database, if enabled.
    pub fn tsdb(&self) -> Option<&TsDb> {
        self.tsdb.as_ref()
    }

    /// Crash-recovery accounting from opening a durable tsdb
    /// ([`SystemConfig::tsdb_dir`]); `None` for in-memory mirrors.
    pub fn tsdb_recovery(&self) -> Option<&tacc_tsdb::RecoveryReport> {
        self.tsdb_recovery.as_ref()
    }

    /// Why the configured durable tsdb fell back to memory, if it did.
    pub fn tsdb_open_error(&self) -> Option<&str> {
        self.tsdb_open_error.as_deref()
    }

    /// Fsync the durable tsdb's write-ahead logs, making every point
    /// mirrored so far crash-proof. No-op (Ok) for in-memory mirrors.
    pub fn flush_tsdb(&self) -> Result<(), tacc_tsdb::DiskError> {
        match &self.tsdb {
            Some(db) if db.is_durable() => db.flush(),
            _ => Ok(()),
        }
    }

    /// The scheduler (running/queued inspection).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Alerts raised by the online analyzer.
    pub fn alerts(&self) -> &[Alert] {
        self.online.as_ref().map(|o| o.alerts()).unwrap_or(&[])
    }

    /// Jobs suspended by automated response.
    pub fn suspended(&self) -> &[JobId] {
        &self.suspended
    }

    /// The XALT environment database (§IV-B).
    pub fn xalt(&self) -> &XaltDb {
        &self.xalt
    }

    /// Aggregate collection-overhead accounting across all nodes.
    pub fn overhead(&self) -> OverheadAccount {
        let mut total = OverheadAccount::default();
        let accounts: Vec<OverheadAccount> = match &self.collectors {
            NodeCollectors::Cron(cs) => cs.iter().map(|c| c.sampler().account()).collect(),
            NodeCollectors::Daemon(ds) => ds.iter().map(|d| d.sampler().account()).collect(),
        };
        for a in accounts {
            total.busy = total.busy + a.busy;
            total.collections += a.collections;
            total.real_nanos += a.real_nanos;
        }
        total
    }

    /// Crash a node: the hardware stops responding; in cron mode the
    /// unsynced local log is lost, in daemon mode the in-memory spool
    /// is wiped into the lost-sequence ledger. Returns samples lost.
    pub fn crash_node(&mut self, node_idx: usize) -> usize {
        self.cluster.node(node_idx).write().crash();
        match &mut self.collectors {
            NodeCollectors::Cron(cs) => cs[node_idx].on_crash(),
            NodeCollectors::Daemon(ds) => ds[node_idx].on_crash(),
        }
    }

    /// Reboot a crashed node: the collector resumes its schedule from
    /// the present (the dead window is not backfilled).
    pub fn reboot_node(&mut self, node_idx: usize) {
        self.cluster.node(node_idx).write().reboot();
        let now = self.clock.now();
        match &mut self.collectors {
            NodeCollectors::Cron(cs) => cs[node_idx].skip_to(now),
            NodeCollectors::Daemon(ds) => ds[node_idx].on_reboot(now),
        }
    }

    /// Apply the fault plan's state for instant `now`: broker outage
    /// windows, node crash/reboot at window edges, and per-device
    /// degradation (missing/truncated pseudo-files, stuck counters).
    fn apply_faults(&mut self, now: SimTime) {
        let Some(plan) = self.fault_plan.clone() else {
            return;
        };
        if let Some(broker) = &self.broker {
            let down = plan.broker_down(now);
            if down && !broker.is_stopped() {
                broker.stop();
            } else if !down && broker.is_stopped() {
                broker.restart();
            }
        }
        for outage in &plan.node_outages {
            let Some(idx) = self.host_index(&outage.host) else {
                continue;
            };
            let down = outage.window.contains(now);
            if down && !self.plan_node_down[idx] {
                self.plan_node_down[idx] = true;
                self.crash_node(idx);
            } else if !down && self.plan_node_down[idx] {
                self.plan_node_down[idx] = false;
                self.reboot_node(idx);
            }
        }
        // Device faults are reasserted every step: a reboot thaws frozen
        // counters and clears read faults, so whatever window is still
        // open must be reinstalled.
        let mut read_faults: HashMap<usize, Vec<ReadFault>> = HashMap::new();
        let mut faulted_nodes: HashSet<usize> = HashSet::new();
        for df in &plan.device_faults {
            let Some(idx) = self.host_index(&df.host) else {
                continue;
            };
            match df.kind {
                DeviceFaultKind::StuckCounter => {
                    self.cluster.node(idx).write().set_frozen(
                        df.dev_type,
                        &df.instance,
                        df.window.contains(now),
                    );
                }
                DeviceFaultKind::MissingFile | DeviceFaultKind::TruncatedRead => {
                    faulted_nodes.insert(idx);
                    if df.window.contains(now) {
                        if let Some(prefix) = fault_path(df.dev_type, &df.instance) {
                            read_faults.entry(idx).or_default().push(ReadFault {
                                prefix,
                                mode: match df.kind {
                                    DeviceFaultKind::MissingFile => ReadFaultMode::Missing,
                                    _ => ReadFaultMode::Truncated,
                                },
                            });
                        }
                    }
                }
            }
        }
        for idx in faulted_nodes {
            self.cluster
                .node(idx)
                .write()
                .set_read_faults(read_faults.remove(&idx).unwrap_or_default());
        }
    }

    /// Reconcile end-to-end delivery accounting (daemon mode only):
    /// every sequence number is classified exactly once.
    pub fn delivery_report(&self) -> DeliveryReport {
        let NodeCollectors::Daemon(ds) = &self.collectors else {
            panic!("delivery accounting requires daemon mode");
        };
        let consumer = self.consumer.as_ref().expect("daemon mode has a consumer");
        let mut r = DeliveryReport::default();
        for (i, d) in ds.iter().enumerate() {
            let host = self.headers[i].hostname.as_str();
            r.collected += d.collected;
            r.degraded_reads += d.sampler().degraded_reads();
            for seq in 0..d.next_seq() {
                if consumer.has_seen(host, seq) {
                    r.delivered += 1;
                } else if d.spool().contains(seq) {
                    r.in_spool += 1;
                } else if d.spool().evicted().contains(&seq) {
                    r.dropped += 1;
                } else {
                    // Crash-wiped (in the lost ledger) or otherwise
                    // vanished — lost either way.
                    r.lost += 1;
                }
            }
        }
        r.duplicates = consumer.duplicates;
        r.gap_events = consumer.gap_events;
        r.received = consumer.received;
        r.dead_lettered = consumer.dead_lettered;
        r
    }

    fn feed_sample(
        headers: &[HostHeader],
        accums: &mut HashMap<JobId, JobAccum>,
        mirror: &mut TsdbMirror,
        tsdb: Option<&TsDb>,
        node_idx: usize,
        sample: &Sample,
    ) {
        let header = &headers[node_idx];
        for jid in &sample.jobids {
            if let Ok(id) = jid.parse::<JobId>() {
                accums.entry(id).or_default().feed(header, sample);
            }
        }
        if let Some(tsdb) = tsdb {
            mirror.feed(header, sample, tsdb);
        }
    }

    fn host_index(&self, host: &str) -> Option<usize> {
        self.headers.iter().position(|h| h.hostname == host)
    }

    fn set_jobs_on(&mut self, node_idx: usize) {
        let ids: Vec<String> = self
            .scheduler
            .running_on(node_idx)
            .into_iter()
            .map(|j| j.to_string())
            .collect();
        match &mut self.collectors {
            NodeCollectors::Cron(cs) => cs[node_idx].set_jobs(ids),
            NodeCollectors::Daemon(ds) => ds[node_idx].set_jobs(ids),
        }
    }

    fn collect_marked_on(&mut self, node_idx: usize, now: SimTime, mark: &str) {
        let node = self.cluster.node(node_idx);
        let guard = node.read();
        if guard.is_crashed() {
            return; // no daemon, no cron job: a dead node collects nothing
        }
        let fs = NodeFs::new(&guard);
        match &mut self.collectors {
            NodeCollectors::Cron(cs) => {
                let sample = cs[node_idx].collect_marked(&fs, now, mark);
                drop(guard);
                Self::feed_sample(
                    &self.headers,
                    &mut self.accums,
                    &mut self.mirror,
                    self.tsdb.as_ref(),
                    node_idx,
                    &sample,
                );
            }
            NodeCollectors::Daemon(ds) => {
                ds[node_idx].collect_marked(&fs, now, mark);
            }
        }
    }

    fn handle_started(&mut self, id: JobId, now: SimTime) {
        let job = self.scheduler.job(id).expect("started job exists").clone();
        self.xalt.record_launch(id, &job.exec);
        let mut pids = Vec::new();
        for (rank, &node_idx) in job.nodes.iter().enumerate() {
            self.node_assign[node_idx] = Some((id, rank));
            let idle = rank >= job.n_nodes.saturating_sub(job.idle_nodes);
            if !idle {
                let node = self.cluster.node(node_idx);
                let mut guard = node.write();
                let n_procs = job.wayness.min(guard.topology.n_cores()).max(1);
                for _ in 0..n_procs {
                    let pid = guard.spawn_process(&job.exec, job.uid, 1, u64::MAX);
                    pids.push((node_idx, pid));
                }
            }
            self.set_jobs_on(node_idx);
            self.collect_marked_on(node_idx, now, &format!("begin {id}"));
        }
        self.job_pids.insert(id, pids);
    }

    fn handle_ended(&mut self, id: JobId, now: SimTime, mark: &str) {
        let job = self.scheduler.job(id).expect("ended job exists").clone();
        for &node_idx in &job.nodes {
            // Epilog collection first (captures the final counters with
            // the job still attributed), then clean up.
            self.collect_marked_on(node_idx, now, &format!("{mark} {id}"));
            self.node_assign[node_idx] = None;
            self.set_jobs_on(node_idx);
        }
        if let Some(pids) = self.job_pids.remove(&id) {
            for (node_idx, pid) in pids {
                self.cluster.node(node_idx).write().end_process(pid);
            }
        }
    }

    fn ingest_finished(&mut self) {
        for job in self.scheduler.drain_finished() {
            let metrics = self
                .accums
                .remove(&job.id)
                .map(|a| a.finalize())
                .unwrap_or_default();
            let mem_gb = self.cfg.largemem_topology.memory_bytes as f64 / 1e9;
            let mem_gb = if job.queue.name() == "largemem" {
                mem_gb
            } else {
                self.cfg.topology.memory_bytes as f64 / 1e9
            };
            // Close out the job's streaming flag state: the streamed
            // verdict replays the batch metrics, so it equals what
            // ingest_job is about to store (and the per-job state is
            // dropped, bounding analyzer memory by live jobs).
            if let Some(online) = &mut self.online {
                let ctx = FlagContext {
                    queue_name: job.queue.name().to_string(),
                    node_memory_gb: mem_gb,
                };
                online.finish_job(&job.id.to_string(), &ctx, &metrics);
            }
            // Feed the portal's quantile sketches.
            self.sketches.observe_job(&metrics);
            ingest_job(&mut self.db, &job, &metrics, &self.rules, mem_gb);
            self.ingested += 1;
        }
    }

    /// Retune every daemon's sampling cadence from the analyzer's
    /// per-node anomaly score: a hot node (score ≥ `hot_score`) snaps
    /// to `min_interval`; a node that completed a full quiet period at
    /// its current cadence backs off multiplicatively toward
    /// `max_interval`.
    fn adapt_cadence(&mut self, now: SimTime) {
        let Some(acfg) = self.adaptive else {
            return;
        };
        let Some(online) = &self.online else {
            return;
        };
        let NodeCollectors::Daemon(ds) = &mut self.collectors else {
            return;
        };
        for (i, d) in ds.iter_mut().enumerate() {
            let Some(header) = self.headers.get(i) else {
                continue;
            };
            let (Some(&cur), Some(&since)) = (self.cadence.get(i), self.cadence_changed.get(i))
            else {
                continue;
            };
            let score = online.anomaly_score(header.hostname);
            let desired = if score >= acfg.hot_score {
                acfg.min_interval
            } else if now.duration_since(since) >= cur {
                // One full quiet period at the current cadence: back
                // off one multiplicative step.
                let next =
                    SimDuration::from_secs((cur.as_secs() as f64 * acfg.backoff).round() as u64);
                if next > acfg.max_interval {
                    acfg.max_interval
                } else {
                    next
                }
            } else {
                cur
            };
            if desired != cur {
                if let Some(slot) = self.cadence.get_mut(i) {
                    *slot = desired;
                }
                if let Some(slot) = self.cadence_changed.get_mut(i) {
                    *slot = now;
                }
                d.set_interval(now, desired);
                self.cadence_log.push((now, i, desired));
            } else if now.duration_since(since) >= cur {
                // At the ceiling (or floor): restart the quiet timer so
                // the elapsed check stays meaningful.
                if let Some(slot) = self.cadence_changed.get_mut(i) {
                    *slot = now;
                }
            }
        }
    }

    /// One driver step: submissions → scheduler events (prolog/epilog
    /// collections) → cluster advance → collector ticks → consumer
    /// drain (daemon) → online analysis → ingest finished jobs.
    pub fn step_once(&mut self) {
        let now = self.clock.now();
        // Fault-plan state for this instant (broker outages, node
        // crash/reboot edges, device degradation).
        self.apply_faults(now);
        // Submissions due.
        while self
            .pending
            .front()
            .map(|(t, _)| *t <= now)
            .unwrap_or(false)
        {
            let (_, req) = self.pending.pop_front().expect("checked nonempty");
            self.scheduler.submit(req, now);
        }
        // Scheduler events.
        let events = self.scheduler.step(now);
        for ev in events {
            match ev {
                SchedEvent::Started(id) => self.handle_started(id, now),
                SchedEvent::Ended(id) => self.handle_ended(id, now, "end"),
            }
        }
        // Demands for the coming step.
        let mut demands: Vec<Option<NodeDemand>> = self
            .node_assign
            .iter()
            .map(|slot| {
                let (id, rank) = (*slot)?;
                let job = self.scheduler.job(id)?;
                if job.status != JobStatus::Running {
                    return None;
                }
                if rank >= job.n_nodes.saturating_sub(job.idle_nodes) {
                    return Some(NodeDemand::idle());
                }
                Some(job.app.demand(rank, job.t_frac(now)))
            })
            .collect();
        // Shared-MDS interference (§VI-A): per-request wait scales with
        // the cluster-wide aggregate request rate, so one job's metadata
        // storm raises every other job's MDCWait.
        let aggregate_reqs: f64 = demands
            .iter()
            .flatten()
            .flat_map(|d| d.lustre.iter())
            .map(|l| l.mdc_reqs_per_sec)
            .sum();
        let factor = self.mds.wait_factor(aggregate_reqs);
        if factor > 1.0 {
            for d in demands.iter_mut().flatten() {
                for l in &mut d.lustre {
                    l.mdc_wait_us *= factor;
                }
            }
        }
        self.cluster
            .advance_all(self.cfg.step, |i| demands[i].clone());
        let now2 = self.clock.now();
        // Collector ticks.
        match &mut self.collectors {
            NodeCollectors::Cron(cs) => {
                for (i, c) in cs.iter_mut().enumerate() {
                    let node = self.cluster.node(i);
                    let guard = node.read();
                    if guard.is_crashed() {
                        continue;
                    }
                    let fs = NodeFs::new(&guard);
                    let samples = c.tick(&fs, now2, &self.archive);
                    drop(guard);
                    for s in samples {
                        Self::feed_sample(
                            &self.headers,
                            &mut self.accums,
                            &mut self.mirror,
                            self.tsdb.as_ref(),
                            i,
                            &s,
                        );
                    }
                }
            }
            NodeCollectors::Daemon(ds) => {
                for (i, d) in ds.iter_mut().enumerate() {
                    let node = self.cluster.node(i);
                    let guard = node.read();
                    if guard.is_crashed() {
                        continue;
                    }
                    let fs = NodeFs::new(&guard);
                    d.tick(&fs, now2);
                }
            }
        }
        // Consumer drain + online analysis (daemon mode).
        let mut to_suspend: Vec<JobId> = Vec::new();
        if let Some(consumer) = &mut self.consumer {
            let drained = match self.pool.as_deref() {
                Some(pool) if pool.workers() > 1 => consumer.drain_parallel(now2, pool),
                _ => consumer.drain(now2),
            };
            for (host, sample) in drained {
                let Some(idx) = self.host_index(host.as_str()) else {
                    continue;
                };
                Self::feed_sample(
                    &self.headers,
                    &mut self.accums,
                    &mut self.mirror,
                    self.tsdb.as_ref(),
                    idx,
                    &sample,
                );
                if let Some(online) = &mut self.online {
                    for alert in online.observe(now2, &self.headers[idx], &sample) {
                        if self.auto_suspend {
                            for jid in &alert.jobids {
                                if let Ok(id) = jid.parse::<JobId>() {
                                    to_suspend.push(id);
                                }
                            }
                        }
                    }
                }
            }
            if let Some(online) = &mut self.online {
                online.check_silence(now2);
            }
        }
        for id in to_suspend {
            self.suspend_job(id, now2);
        }
        // Adaptive sampling: retune daemon cadences from the analyzer's
        // per-node anomaly scores.
        self.adapt_cadence(now2);
        // Ingest whatever finished this step.
        self.ingest_finished();
    }

    /// Suspend (cancel) a job — the §VI-B automated response.
    pub fn suspend_job(&mut self, id: JobId, now: SimTime) -> bool {
        if !self.scheduler.cancel(id, now) {
            return false;
        }
        self.suspended.push(id);
        self.handle_ended(id, now, "cancel");
        true
    }

    /// Drive the system until the clock reaches `end`.
    pub fn run_until(&mut self, end: SimTime) {
        while self.clock.now() < end {
            self.step_once();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::AlertKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tacc_jobdb::Query;
    use tacc_metrics::ingest::JOBS_TABLE;
    use tacc_scheduler::job::QueueName;
    use tacc_simnode::apps::AppModel;
    use tacc_simnode::topology::NodeTopology;
    use tacc_simnode::SimDuration;

    fn request(model: AppModel, n_nodes: usize, runtime_mins: u64) -> JobRequest {
        let mut rng = StdRng::seed_from_u64(runtime_mins);
        let topo = NodeTopology::stampede();
        let app = model.instantiate(&mut rng, n_nodes, 16, &topo);
        JobRequest {
            user: "alice".into(),
            uid: 5001,
            account: "TG-1".into(),
            job_name: "t".into(),
            queue: QueueName::Normal,
            n_nodes,
            wayness: 16,
            runtime: SimDuration::from_mins(runtime_mins),
            will_fail: false,
            idle_nodes: 0,
            app,
        }
    }

    fn t0() -> SimTime {
        SimTime::from_secs(tacc_simnode::clock::Q4_2015_START_SECS)
    }

    #[test]
    fn daemon_mode_end_to_end_job_metrics() {
        let mut sys = MonitoringSystem::new(SystemConfig::small(2, crate::config::Mode::daemon()));
        sys.enqueue_jobs(vec![(t0(), request(AppModel::namd(), 2, 60))]);
        sys.run_until(t0() + SimDuration::from_mins(90));
        assert_eq!(sys.ingested, 1);
        let t = sys.db().table(JOBS_TABLE).unwrap();
        assert_eq!(t.len(), 1);
        let cpu = Query::new(t).avg("CPU_Usage").unwrap().unwrap();
        assert!(cpu > 0.5, "CPU_Usage {cpu}");
        let vec = Query::new(t).avg("VecPercent").unwrap().unwrap();
        assert!(vec > 10.0, "VecPercent {vec}");
        // Samples reached the archive in real time.
        let lat = sys.archive().latency_stats();
        assert!(lat.count > 0);
        assert!(lat.max_secs <= sys.cfg.step.as_secs_f64() + 1.0);
        // ≥2 samples per job (prolog + epilog at least).
        assert!(lat.count >= 2);
    }

    #[test]
    fn daemon_mode_with_pool_matches_sequential() {
        // The same workload through a pooled system and a plain one:
        // the parallel drain and sharded-tsdb scans must not change a
        // single ingested metric or archive byte count.
        let run = |pool: Option<Arc<WorkerPool>>| {
            let mut cfg = SystemConfig::small(3, crate::config::Mode::daemon());
            cfg.enable_tsdb = true;
            let mut sys = MonitoringSystem::new(cfg);
            if let Some(p) = pool {
                sys.set_pool(p);
            }
            sys.enqueue_jobs(vec![
                (t0(), request(AppModel::namd(), 2, 60)),
                (
                    t0() + SimDuration::from_mins(10),
                    request(AppModel::wrf(), 1, 45),
                ),
            ]);
            sys.run_until(t0() + SimDuration::from_mins(120));
            sys
        };
        let plain = run(None);
        let pooled = run(Some(Arc::new(WorkerPool::new(4))));
        assert_eq!(pooled.ingested, plain.ingested);
        let tp = plain.db().table(JOBS_TABLE).unwrap();
        let tq = pooled.db().table(JOBS_TABLE).unwrap();
        assert_eq!(tq.len(), tp.len());
        for col in ["CPU_Usage", "VecPercent", "flops", "cpi"] {
            let a = Query::new(tp).avg(col).unwrap();
            let b = Query::new(tq).avg(col).unwrap();
            assert_eq!(a, b, "{col} must match the sequential pipeline");
        }
        assert_eq!(
            pooled.archive().latency_stats().count,
            plain.archive().latency_stats().count
        );
        let (a, b) = (plain.tsdb().unwrap(), pooled.tsdb().unwrap());
        assert_eq!(a.n_points(), b.n_points());
        assert_eq!(a.n_series(), b.n_series());
    }

    #[test]
    fn cron_mode_end_to_end_with_latency() {
        let mut sys = MonitoringSystem::new(SystemConfig::small(2, Mode::cron()));
        sys.enqueue_jobs(vec![(t0(), request(AppModel::namd(), 1, 30))]);
        // Run past the next day's sync window.
        sys.run_until(t0() + SimDuration::from_hours(30));
        assert_eq!(sys.ingested, 1);
        // Metrics computed even though archive data arrived a day late.
        let t = sys.db().table(JOBS_TABLE).unwrap();
        assert!(Query::new(t).avg("CPU_Usage").unwrap().unwrap() > 0.5);
        let lat = sys.archive().latency_stats();
        assert!(
            lat.mean_secs > 3600.0,
            "cron latency should be hours, got {}",
            lat.mean_secs
        );
    }

    #[test]
    fn overhead_accounting_accumulates() {
        let mut sys = MonitoringSystem::new(SystemConfig::small(2, crate::config::Mode::daemon()));
        sys.run_until(t0() + SimDuration::from_hours(2));
        let acct = sys.overhead();
        // 2 nodes × 13 interval samples.
        assert!(acct.collections >= 24, "collections {}", acct.collections);
        let per_node_elapsed = SimDuration::from_hours(2);
        let ov = OverheadAccount {
            busy: SimDuration::from_nanos(acct.busy.as_nanos() / 2),
            collections: acct.collections / 2,
            real_nanos: 0,
        }
        .overhead_fraction(per_node_elapsed);
        assert!(ov < 1e-3, "overhead {ov}");
    }

    #[test]
    fn online_analyzer_detects_and_suspends_storm_job() {
        let mut sys = MonitoringSystem::new(SystemConfig::small(2, crate::config::Mode::daemon()));
        sys.enable_online(OnlineConfig::default(), true);
        sys.enqueue_jobs(vec![(
            t0(),
            request(AppModel::wrf_metadata_storm(), 2, 240),
        )]);
        sys.run_until(t0() + SimDuration::from_mins(40));
        assert!(
            !sys.alerts().is_empty(),
            "storm must be detected within a few intervals"
        );
        assert_eq!(sys.suspended().len(), 1);
        // The suspended job is in the DB with cancelled status.
        let t = sys.db().table(JOBS_TABLE).unwrap();
        let cancelled = Query::new(t)
            .filter_kw("status", "cancelled")
            .count()
            .unwrap();
        assert_eq!(cancelled, 1);
        // Detection latency: first alert within 2 sampling intervals of
        // job start.
        let first = &sys.alerts()[0];
        let latency = first.time.duration_since(t0());
        assert!(
            latency.as_secs() <= 2 * 600 + sys.cfg.step.as_secs(),
            "latency {}s",
            latency.as_secs()
        );
    }

    #[test]
    fn adaptive_cadence_backs_off_quiet_nodes_and_speeds_up_hot_ones() {
        let mut cfg = SystemConfig::small(3, crate::config::Mode::daemon());
        cfg.interval = SimDuration::from_mins(5);
        let mut sys = MonitoringSystem::new(cfg);
        sys.enable_online(OnlineConfig::default(), false);
        sys.enable_adaptive(AdaptiveConfig::default());
        // Two nodes run an app whose CPU collapses mid-run; node 2
        // stays idle throughout.
        sys.enqueue_jobs(vec![(t0(), request(AppModel::failing(), 2, 180))]);
        sys.run_until(t0() + SimDuration::from_hours(4));
        // Quiet node backed off to the ceiling.
        assert_eq!(
            sys.cadence_of(2),
            AdaptiveConfig::default().max_interval,
            "idle node should be at the backoff ceiling"
        );
        // The collapse spiked the z-score: a job host snapped to the
        // adaptive floor at some point.
        let floor = AdaptiveConfig::default().min_interval;
        assert!(
            sys.cadence_log()
                .iter()
                .any(|(_, node, i)| *node < 2 && *i == floor),
            "no job host ever reached the adaptive floor: {:?}",
            sys.cadence_log()
        );
        // The drop was alerted, and adaptive cadence still collected
        // fewer samples than the fixed 5-min cadence would have
        // (3 nodes x 4 h x 12/h = 144).
        assert!(sys
            .alerts()
            .iter()
            .any(|a| matches!(a.kind, AlertKind::SuddenDrop)));
        let collected = sys.delivery_report().collected;
        assert!(collected < 144, "collected {collected} of fixed 144");
    }

    #[test]
    fn node_crash_loses_cron_data_but_not_daemon_data() {
        // Cron mode.
        let mut cron = MonitoringSystem::new(SystemConfig::small(1, Mode::cron()));
        cron.run_until(t0() + SimDuration::from_hours(2));
        let lost = cron.crash_node(0);
        assert!(lost >= 12, "unsynced samples lost: {lost}");
        // Daemon mode: same scenario, nothing lost.
        let mut daemon =
            MonitoringSystem::new(SystemConfig::small(1, crate::config::Mode::daemon()));
        daemon.run_until(t0() + SimDuration::from_hours(2));
        let lost = daemon.crash_node(0);
        assert_eq!(lost, 0);
        assert!(daemon.archive().total_samples() >= 12);
    }

    #[test]
    fn tsdb_mirror_populates_series() {
        let mut cfg = SystemConfig::small(2, crate::config::Mode::daemon());
        cfg.enable_tsdb = true;
        let mut sys = MonitoringSystem::new(cfg);
        sys.enqueue_jobs(vec![(t0(), request(AppModel::io_heavy(), 2, 60))]);
        sys.run_until(t0() + SimDuration::from_mins(90));
        let tsdb = sys.tsdb().unwrap();
        assert!(tsdb.n_series() > 0);
        let f = tacc_tsdb::TagFilter::any().dev_type("mdc").event("reqs");
        assert!(!tsdb.keys(&f).is_empty());
        assert!(tsdb.n_points() > 0);
    }

    #[test]
    fn durable_tsdb_mirror_survives_a_restart() {
        // Two system lifetimes over the same store directory: the
        // second must recover every point the first flushed.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(format!("tacc-sys-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cfg = SystemConfig::small(2, crate::config::Mode::daemon());
        cfg.enable_tsdb = true;
        cfg.tsdb_dir = Some(dir.clone());
        let mut sys = MonitoringSystem::new(cfg.clone());
        assert!(sys.tsdb_open_error().is_none());
        let report = sys.tsdb_recovery().expect("durable store opened");
        assert_eq!(report.fresh_shards, tacc_tsdb::DEFAULT_SHARDS as u64);
        sys.enqueue_jobs(vec![(t0(), request(AppModel::io_heavy(), 2, 60))]);
        sys.run_until(t0() + SimDuration::from_mins(90));
        let points = sys.tsdb().unwrap().n_points();
        let series = sys.tsdb().unwrap().n_series();
        assert!(points > 0);
        sys.flush_tsdb().unwrap();
        drop(sys);

        let sys = MonitoringSystem::new(cfg);
        let report = *sys.tsdb_recovery().expect("durable store reopened");
        assert!(report.balances(), "{report:?}");
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(sys.tsdb().unwrap().n_points(), points);
        assert_eq!(sys.tsdb().unwrap().n_series(), series);
        drop(sys);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queued_jobs_wait_for_nodes() {
        let mut sys = MonitoringSystem::new(SystemConfig::small(1, crate::config::Mode::daemon()));
        sys.enqueue_jobs(vec![
            (t0(), request(AppModel::python(), 1, 30)),
            (t0(), request(AppModel::python(), 1, 30)),
        ]);
        sys.run_until(t0() + SimDuration::from_mins(90));
        assert_eq!(sys.ingested, 2);
        let t = sys.db().table(JOBS_TABLE).unwrap();
        let waits: Vec<f64> = Query::new(t)
            .values("queue_wait")
            .unwrap()
            .iter()
            .filter_map(|v| v.as_f64())
            .collect();
        assert!(waits.iter().any(|w| *w >= 1700.0), "waits {waits:?}");
    }
}
