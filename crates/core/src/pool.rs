//! Re-export of the scoped worker pool.
//!
//! Like the interner, the pool lives at the bottom of the dependency
//! graph (in `tacc-simnode`) so the consumer fan-out, the sharded tsdb,
//! and the portal partition scans can all share one implementation.
//! This module re-exports it under the top-level façade so downstream
//! users reach it as `tacc_core::pool` without caring where in the
//! graph it lives.

pub use tacc_simnode::pool::{Scope, Scratch, WorkerPool};
