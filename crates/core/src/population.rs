//! Population-scale experiments (the fast path for §V).
//!
//! The paper's §V analyses run over 404,002 jobs — far more than is
//! sensible to push through the full cluster-time-stepped
//! [`crate::MonitoringSystem`]. The runner splits the work the way the
//! real system does:
//!
//! 1. **Scheduling** runs for the whole population at once (cheap: no
//!    hardware simulation), producing start/end times and queue waits
//!    with real contention.
//! 2. **Per-job collection + metrics** then run independently per job —
//!    each job's nodes are simulated in isolation, sampled
//!    prolog/epilog plus interior intervals, streamed through
//!    [`JobAccum`], and ingested. Jobs fan out across the shared
//!    [`WorkerPool`], which is sound because jobs share no mutable
//!    state; within one job, [`simulate_job_on`] fans the *ranks* out
//!    as per-node [`JobAccum`] partials merged at the end.
//!
//! The isolation step is faithful for every Table I metric: counters
//! are cumulative and per-node, and a fresh node is indistinguishable
//! from a rebooted one — and the per-rank partials merge into exactly
//! the accumulator a sequential feed builds, because each rank owns its
//! host.

use crate::pool::WorkerPool;
use crossbeam::channel;
use tacc_collect::discovery::{discover, BuildOptions};
use tacc_collect::engine::Sampler;
use tacc_jobdb::Database;
use tacc_metrics::accum::JobAccum;
use tacc_metrics::flags::FlagRules;
use tacc_metrics::ingest::ingest_job;
use tacc_metrics::table1::JobMetrics;
use tacc_scheduler::job::{Job, QueueName};
use tacc_scheduler::sched::Scheduler;
use tacc_scheduler::workload::{WorkloadConfig, WorkloadGenerator};
use tacc_simnode::pseudofs::NodeFs;
use tacc_simnode::topology::NodeTopology;
use tacc_simnode::workload::NodeDemand;
use tacc_simnode::{SimDuration, SimNode};

/// Result of a population run.
pub struct PopulationResult {
    /// The populated job database.
    pub db: Database,
    /// Jobs ingested.
    pub n_jobs: usize,
    /// Jobs that never started (still queued when scheduling stopped).
    pub unstarted: usize,
}

/// Runs a synthetic population through scheduling and per-job
/// collection.
pub struct PopulationRunner {
    /// Workload configuration (generator parameters).
    pub workload: WorkloadConfig,
    /// Normal-pool size for scheduling. Defaults scale with the
    /// population so queue waits are realistic but bounded.
    pub n_nodes: usize,
    /// Largemem-pool size.
    pub n_largemem: usize,
    /// Number of interior samples per job (in addition to
    /// prolog/epilog).
    pub interior_samples: usize,
    /// Worker threads for the per-job phase.
    pub threads: usize,
}

impl PopulationRunner {
    /// A Q4-2015-shaped run scaled to `n_jobs`.
    pub fn q4_2015(seed: u64, n_jobs: usize) -> PopulationRunner {
        let workload = WorkloadConfig::q4_2015(seed, n_jobs);
        // Capacity: enough nodes that the queue drains within the
        // quarter. Mean job ≈ 5.5 nodes × ~2.6 h ⇒ node-hours ≈ 14.3/job.
        let span_hours = workload.span.as_secs_f64() / 3600.0;
        let node_hours = n_jobs as f64 * 14.3;
        let n_nodes = ((node_hours / span_hours) * 1.6).ceil().max(300.0) as usize;
        PopulationRunner {
            workload,
            n_nodes,
            n_largemem: (n_nodes / 40).max(4),
            interior_samples: 3,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
        }
    }

    /// Run scheduling + per-job collection + ingestion.
    pub fn run(&self) -> PopulationResult {
        // Phase 1: schedule the whole population.
        let mut generator = WorkloadGenerator::new(self.workload.clone());
        let submissions = generator.generate();
        let mut sched = Scheduler::new(self.n_nodes, self.n_largemem);
        let step = SimDuration::from_secs(300);
        let mut t = self.workload.start;
        let horizon = self.workload.start + self.workload.span + SimDuration::from_hours(48);
        let mut iter = submissions.into_iter().peekable();
        let mut finished: Vec<Job> = Vec::new();
        while t <= horizon {
            while iter.peek().map(|(st, _)| *st <= t).unwrap_or(false) {
                let (_, req) = iter.next().expect("peeked");
                sched.submit(req, t);
            }
            sched.step(t);
            finished.append(&mut sched.drain_finished());
            if iter.peek().is_none() && sched.running().next().is_none() && sched.queued() == 0 {
                break;
            }
            t = t + step;
        }
        let unstarted = sched.queued();
        finished.append(&mut sched.drain_finished());

        // Phase 2: per-job node simulation + metrics, fanned out on the
        // scoped worker pool (with one thread the tasks run inline on
        // the caller before the drain below — the unbounded channel
        // makes both schedules equivalent).
        let pool = WorkerPool::new(self.threads);
        let (tx, rx) = channel::unbounded::<(Job, JobMetrics)>();
        let chunk = finished.len().div_ceil(pool.workers()).max(1);
        let topo_normal = self.workload.topology.clone();
        let topo_lm = NodeTopology::stampede_largemem();
        let interior = self.interior_samples;
        pool.scope(|scope| {
            for jobs in finished.chunks(chunk) {
                let tx = tx.clone();
                let topo_normal = topo_normal.clone();
                let topo_lm = topo_lm.clone();
                scope.spawn(move |_scratch| {
                    for job in jobs {
                        let topo = if job.queue == QueueName::LargeMem {
                            &topo_lm
                        } else {
                            &topo_normal
                        };
                        let metrics = simulate_job(job, topo, interior);
                        tx.send((job.clone(), metrics)).expect("collector alive");
                    }
                });
            }
            drop(tx);
            // Phase 3: ingest serially as results arrive.
            let mut db = Database::new();
            let rules = FlagRules::default();
            let mut n_jobs = 0;
            for (job, metrics) in rx {
                let mem_gb = if job.queue == QueueName::LargeMem {
                    topo_lm.memory_bytes as f64 / 1e9
                } else {
                    topo_normal.memory_bytes as f64 / 1e9
                };
                ingest_job(&mut db, &job, &metrics, &rules, mem_gb);
                n_jobs += 1;
            }
            PopulationResult {
                db,
                n_jobs,
                unstarted,
            }
        })
    }
}

/// Simulate one rank (node) of a job in isolation and return its
/// partial accumulation — one host's worth of [`JobAccum`] state.
/// Ranks share nothing, so any number can run concurrently and the
/// partials [`JobAccum::merge`] into exactly what a sequential feed of
/// all ranks builds.
///
/// Sampling plan: prolog at start, epilog at end, `interior` evenly
/// spaced interior samples; each sampling interval advances the node in
/// 8 sub-steps so phase structure (output bursts, failures, compile
/// phases) lands in the counters.
pub fn simulate_rank(job: &Job, topo: &NodeTopology, interior: usize, rank: usize) -> JobAccum {
    let mut acc = JobAccum::new();
    let runtime = job.run_time();
    if runtime.is_zero() {
        return acc;
    }
    let n_samples = interior + 2;
    let hostname = format!("c{:03}-{rank:03}", job.id % 1000);
    let mut node = SimNode::new(hostname.clone(), topo.clone());
    let cfg = {
        let fs = NodeFs::new(&node);
        discover(&fs, BuildOptions::default()).expect("fresh node")
    };
    let mut sampler = Sampler::new(&hostname, &cfg);
    let idle_rank = rank >= job.n_nodes.saturating_sub(job.idle_nodes);
    if !idle_rank {
        let n_procs = job.wayness.min(topo.n_cores()).max(1);
        for _ in 0..n_procs.min(4) {
            node.spawn_process(&job.exec, job.uid, 1, u64::MAX);
        }
    }
    let jobids = [job.id.to_string()];
    // Prolog sample.
    {
        let fs = NodeFs::new(&node);
        let s = sampler.sample(&fs, job.start, &jobids, &[format!("begin {}", job.id)]);
        acc.feed(sampler.header(), &s);
    }
    for k in 1..n_samples {
        let t_prev = job.start + runtime * (k as u64 - 1) / (n_samples as u64 - 1);
        let t_now = job.start + runtime * (k as u64) / (n_samples as u64 - 1);
        // Advance in sub-steps so phase transitions are captured.
        const SUB: u64 = 8;
        let sub_dt = t_now.duration_since(t_prev) / SUB;
        for s in 0..SUB {
            let mid = t_prev + sub_dt * s + sub_dt / 2;
            let demand = if idle_rank {
                NodeDemand::idle()
            } else {
                job.app.demand(rank, job.t_frac(mid))
            };
            node.advance(sub_dt, &demand);
        }
        let fs = NodeFs::new(&node);
        let marks = if k == n_samples - 1 {
            vec![format!("end {}", job.id)]
        } else {
            Vec::new()
        };
        let s = sampler.sample(&fs, t_now, &jobids, &marks);
        acc.feed(sampler.header(), &s);
    }
    acc
}

/// Simulate one job's nodes in isolation and compute its metrics,
/// rank by rank on the caller thread.
pub fn simulate_job(job: &Job, topo: &NodeTopology, interior: usize) -> JobMetrics {
    if job.run_time().is_zero() {
        return JobMetrics::new();
    }
    let mut acc = JobAccum::new();
    for rank in 0..job.n_nodes {
        acc.merge(simulate_rank(job, topo, interior, rank));
    }
    acc.finalize()
}

/// Like [`simulate_job`], but fan the ranks out across `pool` and
/// merge the per-node partials in rank order. Each rank feeds only its
/// own host, so the merged accumulator — and therefore the finalized
/// metrics — is identical to the sequential path.
pub fn simulate_job_on(
    job: &Job,
    topo: &NodeTopology,
    interior: usize,
    pool: &WorkerPool,
) -> JobMetrics {
    if job.run_time().is_zero() {
        return JobMetrics::new();
    }
    let partials = pool.map_parts(job.n_nodes, |rank, _scratch| {
        simulate_rank(job, topo, interior, rank)
    });
    let mut acc = JobAccum::new();
    for partial in partials {
        acc.merge(partial);
    }
    acc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_jobdb::Query;
    use tacc_metrics::ingest::JOBS_TABLE;
    use tacc_metrics::table1::MetricId;

    #[test]
    fn small_population_runs_and_ingests() {
        let mut runner = PopulationRunner::q4_2015(7, 300);
        runner.threads = 4;
        let result = runner.run();
        assert!(result.n_jobs >= 300, "ingested {}", result.n_jobs);
        assert_eq!(result.unstarted, 0);
        let t = result.db.table(JOBS_TABLE).unwrap();
        assert_eq!(t.len(), result.n_jobs);
        // Core population shapes hold even at this scale.
        let total = t.len() as f64;
        let vec_lo = Query::new(t)
            .filter_kw("VecPercent__gt", 1.0)
            .count()
            .unwrap() as f64
            / total;
        assert!((0.3..0.8).contains(&vec_lo), "vec>1% {vec_lo}");
        let cpu = Query::new(t).avg("CPU_Usage").unwrap().unwrap();
        assert!((0.4..0.95).contains(&cpu), "avg cpu {cpu}");
    }

    #[test]
    fn simulate_job_is_deterministic() {
        let runner = PopulationRunner::q4_2015(3, 50);
        let mut generator = WorkloadGenerator::new(runner.workload.clone());
        let submissions = generator.generate();
        let mut sched = Scheduler::new(100, 4);
        let (t, req) = submissions.into_iter().next().unwrap();
        sched.submit(req, t);
        sched.step(t);
        sched.step(t + SimDuration::from_hours(48));
        let job = sched.drain_finished().pop().unwrap();
        let m1 = simulate_job(&job, &NodeTopology::stampede(), 3);
        let m2 = simulate_job(&job, &NodeTopology::stampede(), 3);
        assert_eq!(m1.get(MetricId::CpuUsage), m2.get(MetricId::CpuUsage));
        assert_eq!(m1.get(MetricId::Flops), m2.get(MetricId::Flops));
    }

    #[test]
    fn pooled_job_simulation_matches_sequential() {
        // A multi-node job simulated rank-parallel on the pool must
        // produce exactly the sequential metrics — the partials merge
        // per host, and each rank owns its host.
        let runner = PopulationRunner::q4_2015(11, 50);
        let mut generator = WorkloadGenerator::new(runner.workload.clone());
        let submissions = generator.generate();
        let mut sched = Scheduler::new(100, 4);
        let mut multi = None;
        for (t, req) in submissions {
            if req.n_nodes >= 3 {
                let id = sched.submit(req, t);
                sched.step(t);
                sched.step(t + SimDuration::from_hours(48));
                multi = sched.drain_finished().into_iter().find(|j| j.id == id);
                break;
            }
        }
        let job = multi.expect("workload contains a multi-node job");
        let sequential = simulate_job(&job, &NodeTopology::stampede(), 3);
        for workers in [1usize, 4] {
            let pool = WorkerPool::new(workers);
            let pooled = simulate_job_on(&job, &NodeTopology::stampede(), 3, &pool);
            for id in MetricId::ALL {
                assert_eq!(
                    sequential.get(id),
                    pooled.get(id),
                    "{id} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn zero_runtime_job_yields_empty_metrics() {
        let runner = PopulationRunner::q4_2015(3, 10);
        let mut generator = WorkloadGenerator::new(runner.workload.clone());
        let (t, req) = generator.generate().into_iter().next().unwrap();
        let mut sched = Scheduler::new(100, 4);
        let id = sched.submit(req, t);
        sched.step(t);
        let mut job = sched.job(id).unwrap().clone();
        job.end = job.start;
        assert!(simulate_job(&job, &NodeTopology::stampede(), 3).is_empty());
    }
}
