//! Automated real-time analysis (§VI-B).
//!
//! "Combining this time-series analysis capability with the real time
//! reporting recently enabled in TACC Stats will allow problem jobs to
//! be quickly identified and suspended before they create system-wide
//! slowdowns or crashes. This identification process could be automated
//! and a system administrator notified immediately upon identification
//! of problematic behavior."
//!
//! The [`OnlineAnalyzer`] watches the daemon-mode sample stream as the
//! consumer drains it, maintains the previous sample per host to turn
//! cumulative counters into instantaneous rates, and raises one
//! [`Alert`] per (job, kind). Detection latency is bounded by the
//! sampling interval — versus up to a full day in cron mode.

use std::collections::{HashMap, HashSet};
use tacc_collect::record::{HostHeader, Sample};
use tacc_simnode::counter::wrapping_delta;
use tacc_simnode::intern::Sym;
use tacc_simnode::schema::DeviceType;
use tacc_simnode::SimTime;

/// What kind of problem an alert reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlertKind {
    /// Metadata request rate threatening the Lustre MDS.
    MetadataStorm,
    /// Heavy GigE traffic (MPI over Ethernet).
    GigeTraffic,
    /// A node stopped reporting (possible failure).
    SilentNode,
}

/// A raised alert.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// When the analyzer saw the offending sample.
    pub time: SimTime,
    /// Host whose sample triggered the alert.
    pub host: String,
    /// Jobs active on the host at that moment.
    pub jobids: Vec<String>,
    /// Problem class.
    pub kind: AlertKind,
    /// The offending rate (req/s for metadata, bytes/s for GigE,
    /// seconds of silence for silent nodes).
    pub value: f64,
}

/// Analyzer thresholds.
#[derive(Clone, Copy, Debug)]
pub struct OnlineConfig {
    /// Per-host metadata request rate (req/s) above which a storm is
    /// declared.
    pub md_rate_per_host: f64,
    /// Per-host GigE byte rate (bytes/s).
    pub gige_rate: f64,
    /// Seconds without a sample before a host is declared silent.
    pub silence_secs: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            md_rate_per_host: 20_000.0,
            gige_rate: 10e6,
            silence_secs: 2_100, // 3.5 sampling intervals at 10 min
        }
    }
}

#[derive(Clone, Copy, Default)]
struct PrevCounters {
    t: u64,
    mdc_reqs: u64,
    net_bytes: u64,
}

/// Streaming analyzer over the consumer output.
pub struct OnlineAnalyzer {
    cfg: OnlineConfig,
    prev: HashMap<Sym, PrevCounters>,
    last_seen: HashMap<Sym, SimTime>,
    raised: HashSet<(String, AlertKind)>,
    alerts: Vec<Alert>,
}

impl OnlineAnalyzer {
    /// New analyzer.
    pub fn new(cfg: OnlineConfig) -> OnlineAnalyzer {
        OnlineAnalyzer {
            cfg,
            prev: HashMap::new(),
            last_seen: HashMap::new(),
            raised: HashSet::new(),
            alerts: Vec::new(),
        }
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alerts of one kind.
    pub fn alerts_of(&self, kind: AlertKind) -> Vec<&Alert> {
        self.alerts.iter().filter(|a| a.kind == kind).collect()
    }

    fn raise(
        &mut self,
        now: SimTime,
        host: &str,
        jobids: &[String],
        kind: AlertKind,
        value: f64,
    ) -> Option<Alert> {
        // One alert per (responsible job or host, kind).
        let key = jobids.first().cloned().unwrap_or_else(|| host.to_string());
        if !self.raised.insert((key, kind)) {
            return None;
        }
        let alert = Alert {
            time: now,
            host: host.to_string(),
            jobids: jobids.to_vec(),
            kind,
            value,
        };
        self.alerts.push(alert.clone());
        Some(alert)
    }

    /// Observe one sample as the consumer processes it. Returns any
    /// newly raised alerts.
    pub fn observe(&mut self, now: SimTime, header: &HostHeader, sample: &Sample) -> Vec<Alert> {
        let host = header.hostname;
        self.last_seen.insert(host, now);
        let t = sample.time.as_secs();
        let mdc_reqs: u64 = {
            let idx = header
                .schemas
                .get(&DeviceType::Mdc)
                .and_then(|s| s.index_of("reqs"));
            match idx {
                Some(i) => sample
                    .devices_of(DeviceType::Mdc)
                    .map(|r| r.values[i])
                    .sum(),
                None => 0,
            }
        };
        let net_bytes: u64 = {
            let s = header.schemas.get(&DeviceType::Net);
            match s {
                Some(s) => {
                    let rx = s.index_of("rx_bytes");
                    let tx = s.index_of("tx_bytes");
                    sample
                        .devices_of(DeviceType::Net)
                        .map(|r| {
                            rx.map(|i| r.values[i]).unwrap_or(0)
                                + tx.map(|i| r.values[i]).unwrap_or(0)
                        })
                        .sum()
                }
                None => 0,
            }
        };
        let mut out = Vec::new();
        if let Some(prev) = self.prev.get(&host).copied() {
            let dt = t.saturating_sub(prev.t) as f64;
            if dt > 0.0 {
                let md_rate = wrapping_delta(prev.mdc_reqs, mdc_reqs, 64) as f64 / dt;
                if md_rate > self.cfg.md_rate_per_host {
                    if let Some(a) = self.raise(
                        now,
                        host.as_str(),
                        &sample.jobids,
                        AlertKind::MetadataStorm,
                        md_rate,
                    ) {
                        out.push(a);
                    }
                }
                let net_rate = wrapping_delta(prev.net_bytes, net_bytes, 64) as f64 / dt;
                if net_rate > self.cfg.gige_rate {
                    if let Some(a) = self.raise(
                        now,
                        host.as_str(),
                        &sample.jobids,
                        AlertKind::GigeTraffic,
                        net_rate,
                    ) {
                        out.push(a);
                    }
                }
            }
        }
        self.prev.insert(
            host,
            PrevCounters {
                t,
                mdc_reqs,
                net_bytes,
            },
        );
        out
    }

    /// Periodic silence check: hosts not heard from within the
    /// configured window. Call once per driver step.
    pub fn check_silence(&mut self, now: SimTime) -> Vec<Alert> {
        let mut out = Vec::new();
        let silent: Vec<(Sym, SimTime)> = self
            .last_seen
            .iter()
            .filter(|(_, last)| now.duration_since(**last).as_secs() >= self.cfg.silence_secs)
            .map(|(h, last)| (*h, *last))
            .collect();
        for (host, last) in silent {
            let silence = now.duration_since(last).as_secs() as f64;
            if let Some(a) = self.raise(now, host.as_str(), &[], AlertKind::SilentNode, silence) {
                out.push(a);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tacc_collect::record::{DeviceRecord, SimTimeRepr};
    use tacc_simnode::topology::CpuArch;

    fn header(host: &str) -> HostHeader {
        let mut schemas = BTreeMap::new();
        schemas.insert(
            DeviceType::Mdc,
            DeviceType::Mdc.schema(CpuArch::SandyBridge),
        );
        schemas.insert(
            DeviceType::Net,
            DeviceType::Net.schema(CpuArch::SandyBridge),
        );
        HostHeader {
            hostname: host.into(),
            arch: CpuArch::SandyBridge,
            schemas,
        }
    }

    fn sample(t: u64, jobid: &str, mdc_reqs: u64, net_bytes: u64) -> Sample {
        Sample {
            time: SimTimeRepr::from(SimTime::from_secs(t)),
            jobids: vec![jobid.to_string()],
            marks: vec![],
            devices: vec![
                DeviceRecord {
                    dev_type: DeviceType::Mdc,
                    instance: "scratch".into(),
                    values: vec![mdc_reqs, mdc_reqs * 200].into(),
                },
                DeviceRecord {
                    dev_type: DeviceType::Net,
                    instance: "eth0".into(),
                    values: vec![net_bytes / 2, 0, net_bytes / 2, 0].into(),
                },
            ],
            processes: vec![],
        }
    }

    #[test]
    fn metadata_storm_detected_on_second_sample() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        // First sample: baseline only, no alert possible.
        assert!(a
            .observe(SimTime::from_secs(0), &h, &sample(0, "77", 0, 0))
            .is_empty());
        // 600 s later: 140k req/s.
        let alerts = a.observe(
            SimTime::from_secs(600),
            &h,
            &sample(600, "77", 140_000 * 600, 0),
        );
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::MetadataStorm);
        assert_eq!(alerts[0].jobids, vec!["77"]);
        assert!((alerts[0].value - 140_000.0).abs() < 1.0);
        // Continuing storm: no duplicate alert for the same job.
        let again = a.observe(
            SimTime::from_secs(1200),
            &h,
            &sample(1200, "77", 2 * 140_000 * 600, 0),
        );
        assert!(again.is_empty());
        assert_eq!(a.alerts().len(), 1);
    }

    #[test]
    fn quiet_host_never_alerts() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        for k in 0..10u64 {
            let s = sample(600 * k, "5", 10 * 600 * k, 1000 * 600 * k);
            assert!(a.observe(SimTime::from_secs(600 * k), &h, &s).is_empty());
        }
    }

    #[test]
    fn gige_traffic_detected() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        a.observe(SimTime::from_secs(0), &h, &sample(0, "9", 0, 0));
        let alerts = a.observe(
            SimTime::from_secs(600),
            &h,
            &sample(600, "9", 0, 90_000_000 * 600),
        );
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::GigeTraffic);
    }

    #[test]
    fn silent_node_detected() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        a.observe(SimTime::from_secs(0), &h, &sample(0, "1", 0, 0));
        assert!(a.check_silence(SimTime::from_secs(1200)).is_empty());
        let alerts = a.check_silence(SimTime::from_secs(3000));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::SilentNode);
        // No duplicates.
        assert!(a.check_silence(SimTime::from_secs(4000)).is_empty());
    }

    #[test]
    fn separate_jobs_alert_separately() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        for (host, job) in [("c1", "100"), ("c2", "200")] {
            let h = header(host);
            a.observe(SimTime::from_secs(0), &h, &sample(0, job, 0, 0));
            let alerts = a.observe(
                SimTime::from_secs(600),
                &h,
                &sample(600, job, 50_000 * 600, 0),
            );
            assert_eq!(alerts.len(), 1, "{job}");
        }
        assert_eq!(a.alerts_of(AlertKind::MetadataStorm).len(), 2);
    }
}
