//! Automated real-time analysis (§VI-B).
//!
//! "Combining this time-series analysis capability with the real time
//! reporting recently enabled in TACC Stats will allow problem jobs to
//! be quickly identified and suspended before they create system-wide
//! slowdowns or crashes. This identification process could be automated
//! and a system administrator notified immediately upon identification
//! of problematic behavior."
//!
//! The [`OnlineAnalyzer`] watches the daemon-mode sample stream as the
//! consumer drains it and owns three layers of streaming state:
//!
//! * **Rate thresholds** — the previous sample per host turns
//!   cumulative counters into instantaneous rates; metadata storms and
//!   GigE traffic raise one [`Alert`] per (job, kind).
//! * **Streaming job flags** — the per-host rate estimates feed
//!   [`FlagStreams`] keyed by interned job id, so §V-A flags trip
//!   *mid-job* ([`AlertKind::JobFlag`]); at job end
//!   [`OnlineAnalyzer::finish_job`] replays the batch metrics through
//!   the same stream, making the final verdict exactly the batch one.
//! * **Z-score anomaly detection** — a fixed ring buffer of recent CPU
//!   user-jiffies rates per host; a sample more than
//!   [`OnlineConfig::zscore_threshold`] standard deviations from the
//!   ring mean raises [`AlertKind::SuddenDrop`] /
//!   [`AlertKind::SuddenRise`] online, not just at job end. The
//!   per-host [`OnlineAnalyzer::anomaly_score`] (a decaying max of
//!   |z|) drives adaptive sampling cadence ([`AdaptiveConfig`]).
//!
//! Every alert records its sample→detection latency
//! ([`Alert::latency_secs`]); in daemon mode that is bounded by the
//! sampling interval — versus up to a full day in cron mode.

use std::collections::{HashMap, HashSet};
use tacc_collect::record::{HostHeader, Sample};
use tacc_metrics::flags::FlagContext;
use tacc_metrics::stream::{FlagSet, FlagStreams};
use tacc_metrics::{Flag, FlagRules, JobMetrics, MetricId};
use tacc_simnode::counter::wrapping_delta;
use tacc_simnode::intern::Sym;
use tacc_simnode::schema::DeviceType;
use tacc_simnode::{SimDuration, SimTime};

/// What kind of problem an alert reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlertKind {
    /// Metadata request rate threatening the Lustre MDS.
    MetadataStorm,
    /// Heavy GigE traffic (MPI over Ethernet).
    GigeTraffic,
    /// A node stopped reporting (possible failure).
    SilentNode,
    /// CPU activity collapsed relative to the host's recent history
    /// (z-score below −threshold): likely application failure.
    SuddenDrop,
    /// CPU activity jumped relative to recent history (z-score above
    /// +threshold): compile-then-run signature.
    SuddenRise,
    /// A §V-A job flag tripped mid-job in the streaming evaluator.
    JobFlag(Flag),
}

/// A raised alert.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// When the analyzer saw the offending sample.
    pub time: SimTime,
    /// Host whose sample triggered the alert.
    pub host: String,
    /// Jobs active on the host at that moment.
    pub jobids: Vec<String>,
    /// Problem class.
    pub kind: AlertKind,
    /// The offending rate (req/s for metadata, bytes/s for GigE,
    /// seconds of silence for silent nodes, z-score for sudden
    /// rise/drop, metric value for job flags).
    pub value: f64,
    /// Seconds between the offending sample's timestamp and the
    /// analyzer seeing it — the sample→flag detection latency.
    pub latency_secs: f64,
}

/// Analyzer thresholds.
#[derive(Clone, Copy, Debug)]
pub struct OnlineConfig {
    /// Per-host metadata request rate (req/s) above which a storm is
    /// declared.
    pub md_rate_per_host: f64,
    /// Per-host GigE byte rate (bytes/s).
    pub gige_rate: f64,
    /// Seconds without a sample before a host is declared silent.
    pub silence_secs: u64,
    /// |z| at which a CPU-rate sample is anomalous.
    pub zscore_threshold: f64,
    /// Ring-buffer window of recent per-host CPU rates (max
    /// [`ZRING_CAP`]).
    pub zscore_window: usize,
    /// Minimum ring occupancy before z-scores are computed.
    pub zscore_min_samples: usize,
    /// Per-observation decay of the host anomaly score toward zero.
    pub anomaly_decay: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            md_rate_per_host: 20_000.0,
            gige_rate: 10e6,
            silence_secs: 2_100, // 3.5 sampling intervals at 10 min
            zscore_threshold: 3.0,
            zscore_window: 12,
            zscore_min_samples: 5,
            anomaly_decay: 0.85,
        }
    }
}

/// Adaptive per-node sampling policy (§VI-B closing the loop): stable
/// nodes back off toward `max_interval`, anomalous nodes snap to
/// `min_interval`.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Cadence for nodes whose anomaly score is at/above `hot_score`.
    pub min_interval: SimDuration,
    /// Ceiling stable nodes back off toward.
    pub max_interval: SimDuration,
    /// Anomaly score at which a node is sampled at `min_interval`.
    pub hot_score: f64,
    /// Multiplicative backoff applied after a full quiet period at the
    /// current cadence.
    pub backoff: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_interval: SimDuration::from_secs(60),
            max_interval: SimDuration::from_secs(1_200),
            hot_score: 3.0,
            backoff: 2.0,
        }
    }
}

/// Ring-buffer capacity for per-host CPU-rate history; the effective
/// window is `min(zscore_window, ZRING_CAP)`.
pub const ZRING_CAP: usize = 16;

/// Fixed-capacity ring of recent rates — no allocation after the host
/// entry itself is created.
#[derive(Clone, Copy)]
struct ZRing {
    buf: [f64; ZRING_CAP],
    len: usize,
    pos: usize,
}

impl ZRing {
    fn new() -> ZRing {
        ZRing {
            buf: [0.0; ZRING_CAP],
            len: 0,
            pos: 0,
        }
    }

    fn push(&mut self, x: f64, window: usize) {
        let window = window.clamp(1, ZRING_CAP);
        if let Some(cell) = self.buf.get_mut(self.pos) {
            *cell = x;
        }
        self.pos = (self.pos + 1) % window;
        if self.len < window {
            self.len += 1;
        } else {
            self.len = window;
        }
    }

    fn mean_std(&self) -> Option<(f64, f64)> {
        if self.len == 0 {
            return None;
        }
        let slice = self.buf.get(..self.len)?;
        let n = self.len as f64;
        let mean = slice.iter().sum::<f64>() / n;
        let var = slice.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Some((mean, var.sqrt()))
    }
}

#[derive(Clone, Copy, Default)]
struct PrevCounters {
    t: u64,
    mdc_reqs: u64,
    net_bytes: u64,
    cpu_user: u64,
}

/// Per-host streaming state.
struct HostState {
    prev: Option<PrevCounters>,
    ring: ZRing,
    anomaly: f64,
}

impl HostState {
    fn new() -> HostState {
        HostState {
            prev: None,
            ring: ZRing::new(),
            anomaly: 0.0,
        }
    }
}

/// Streaming analyzer over the consumer output.
pub struct OnlineAnalyzer {
    cfg: OnlineConfig,
    hosts: HashMap<Sym, HostState>,
    last_seen: HashMap<Sym, SimTime>,
    raised: HashSet<(String, AlertKind)>,
    alerts: Vec<Alert>,
    streams: FlagStreams,
}

impl OnlineAnalyzer {
    /// New analyzer evaluating the default [`FlagRules`].
    pub fn new(cfg: OnlineConfig) -> OnlineAnalyzer {
        OnlineAnalyzer::with_rules(cfg, FlagRules::default())
    }

    /// New analyzer with explicit flag thresholds.
    pub fn with_rules(cfg: OnlineConfig, rules: FlagRules) -> OnlineAnalyzer {
        OnlineAnalyzer {
            cfg,
            hosts: HashMap::new(),
            last_seen: HashMap::new(),
            raised: HashSet::new(),
            alerts: Vec::new(),
            streams: FlagStreams::new(rules),
        }
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alerts of one kind.
    pub fn alerts_of(&self, kind: AlertKind) -> Vec<&Alert> {
        self.alerts.iter().filter(|a| a.kind == kind).collect()
    }

    /// Current anomaly score for a host: a decaying maximum of recent
    /// |z| values, bumped by threshold alerts. Zero for unseen or
    /// quiet hosts.
    pub fn anomaly_score(&self, host: Sym) -> f64 {
        self.hosts.get(&host).map(|h| h.anomaly).unwrap_or(0.0)
    }

    /// Current *streamed* (estimated) flag verdict for a job.
    pub fn job_flags(&self, jobid: &str) -> FlagSet {
        self.streams.flags(Sym::new(jobid))
    }

    /// Number of live per-job flag streams.
    pub fn live_job_streams(&self) -> usize {
        self.streams.len()
    }

    /// Close out a finished job: replay its batch metrics through the
    /// streaming evaluator (dropping the per-job state) and return the
    /// final verdict, which equals `FlagRules::evaluate(ctx, m)` by
    /// construction.
    pub fn finish_job(&mut self, jobid: &str, ctx: &FlagContext, m: &JobMetrics) -> FlagSet {
        self.streams.finish(Sym::new(jobid), ctx, m)
    }

    fn raise(
        &mut self,
        now: SimTime,
        sample_t: SimTime,
        host: &str,
        jobids: &[String],
        kind: AlertKind,
        value: f64,
    ) -> Option<Alert> {
        // One alert per (responsible job or host, kind).
        let key = jobids.first().cloned().unwrap_or_else(|| host.to_string());
        if !self.raised.insert((key, kind)) {
            return None;
        }
        let alert = Alert {
            time: now,
            host: host.to_string(),
            jobids: jobids.to_vec(),
            kind,
            value,
            latency_secs: now.duration_since(sample_t).as_secs() as f64,
        };
        self.alerts.push(alert.clone());
        Some(alert)
    }

    /// Observe one sample as the consumer processes it. Returns any
    /// newly raised alerts.
    pub fn observe(&mut self, now: SimTime, header: &HostHeader, sample: &Sample) -> Vec<Alert> {
        let host = header.hostname;
        self.last_seen.insert(host, now);
        let t = sample.time.as_secs();
        let sample_t = SimTime::from_secs(t);
        let mdc_reqs: u64 = {
            let idx = header
                .schemas
                .get(&DeviceType::Mdc)
                .and_then(|s| s.index_of("reqs"));
            match idx {
                Some(i) => sample
                    .devices_of(DeviceType::Mdc)
                    .map(|r| r.values[i])
                    .sum(),
                None => 0,
            }
        };
        let net_bytes: u64 = {
            let s = header.schemas.get(&DeviceType::Net);
            match s {
                Some(s) => {
                    let rx = s.index_of("rx_bytes");
                    let tx = s.index_of("tx_bytes");
                    sample
                        .devices_of(DeviceType::Net)
                        .map(|r| {
                            rx.map(|i| r.values[i]).unwrap_or(0)
                                + tx.map(|i| r.values[i]).unwrap_or(0)
                        })
                        .sum()
                }
                None => 0,
            }
        };
        let cpu_user: u64 = {
            let idx = header
                .schemas
                .get(&DeviceType::Cpustat)
                .and_then(|s| s.index_of("user"));
            match idx {
                Some(i) => sample
                    .devices_of(DeviceType::Cpustat)
                    .map(|r| r.values[i])
                    .sum(),
                None => 0,
            }
        };

        let mut out = Vec::new();
        let state = self.hosts.entry(host).or_insert_with(HostState::new);
        let prev = state.prev;
        state.prev = Some(PrevCounters {
            t,
            mdc_reqs,
            net_bytes,
            cpu_user,
        });
        let mut decayed = state.anomaly * self.cfg.anomaly_decay;
        if decayed < 1e-3 {
            decayed = 0.0;
        }

        let Some(prev) = prev else {
            // Baseline sample: no rates yet.
            if let Some(state) = self.hosts.get_mut(&host) {
                state.anomaly = decayed;
            }
            return out;
        };
        let dt = t.saturating_sub(prev.t) as f64;
        if dt <= 0.0 {
            if let Some(state) = self.hosts.get_mut(&host) {
                state.anomaly = decayed;
            }
            return out;
        }

        let md_rate = wrapping_delta(prev.mdc_reqs, mdc_reqs, 64) as f64 / dt;
        let net_rate = wrapping_delta(prev.net_bytes, net_bytes, 64) as f64 / dt;
        let cpu_rate = wrapping_delta(prev.cpu_user, cpu_user, 64) as f64 / dt;

        if md_rate > self.cfg.md_rate_per_host {
            if let Some(a) = self.raise(
                now,
                sample_t,
                host.as_str(),
                &sample.jobids,
                AlertKind::MetadataStorm,
                md_rate,
            ) {
                out.push(a);
            }
        }
        if net_rate > self.cfg.gige_rate {
            if let Some(a) = self.raise(
                now,
                sample_t,
                host.as_str(),
                &sample.jobids,
                AlertKind::GigeTraffic,
                net_rate,
            ) {
                out.push(a);
            }
        }

        // Z-score anomaly over the host's own recent CPU activity.
        let (zscore, ring_ready) = match self.hosts.get(&host).map(|h| h.ring) {
            Some(ring) if ring.len >= self.cfg.zscore_min_samples.clamp(2, ZRING_CAP) => {
                match ring.mean_std() {
                    Some((mean, std)) if std > 1e-9 => ((cpu_rate - mean) / std, true),
                    _ => (0.0, false),
                }
            }
            _ => (0.0, false),
        };
        if ring_ready && zscore.abs() >= self.cfg.zscore_threshold {
            let kind = if zscore < 0.0 {
                AlertKind::SuddenDrop
            } else {
                AlertKind::SuddenRise
            };
            if let Some(a) = self.raise(now, sample_t, host.as_str(), &sample.jobids, kind, zscore)
            {
                out.push(a);
            }
        }
        let score = if ring_ready && zscore.abs() >= self.cfg.zscore_threshold {
            zscore.abs().max(decayed)
        } else {
            decayed
        };
        if let Some(state) = self.hosts.get_mut(&host) {
            state.ring.push(cpu_rate, self.cfg.zscore_window);
            state.anomaly = score;
        }

        // Feed the streaming flag evaluator with per-job estimates:
        // MetaDataRate in req/s, GigEBW in MB/s (both `>` thresholds,
        // so a zero estimate can never trip them).
        for jobid in &sample.jobids {
            let job = Sym::new(jobid);
            let before = self.streams.flags(job);
            self.streams.update(job, MetricId::MetaDataRate, md_rate);
            let after = self.streams.update(job, MetricId::GigEBW, net_rate / 1e6);
            for flag in after.added_since(before) {
                let value = match flag {
                    Flag::HighMetadataRate => md_rate,
                    Flag::HighGigE => net_rate / 1e6,
                    _ => 0.0,
                };
                if let Some(a) = self.raise(
                    now,
                    sample_t,
                    host.as_str(),
                    &sample.jobids,
                    AlertKind::JobFlag(flag),
                    value,
                ) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Periodic silence check: hosts not heard from within the
    /// configured window. Call once per driver step.
    pub fn check_silence(&mut self, now: SimTime) -> Vec<Alert> {
        let mut out = Vec::new();
        let silent: Vec<(Sym, SimTime)> = self
            .last_seen
            .iter()
            .filter(|(_, last)| now.duration_since(**last).as_secs() >= self.cfg.silence_secs)
            .map(|(h, last)| (*h, *last))
            .collect();
        for (host, last) in silent {
            let silence = now.duration_since(last).as_secs() as f64;
            if let Some(a) = self.raise(
                now,
                last,
                host.as_str(),
                &[],
                AlertKind::SilentNode,
                silence,
            ) {
                out.push(a);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tacc_collect::record::{DeviceRecord, SimTimeRepr};
    use tacc_simnode::topology::CpuArch;

    fn header(host: &str) -> HostHeader {
        let mut schemas = BTreeMap::new();
        schemas.insert(
            DeviceType::Mdc,
            DeviceType::Mdc.schema(CpuArch::SandyBridge),
        );
        schemas.insert(
            DeviceType::Net,
            DeviceType::Net.schema(CpuArch::SandyBridge),
        );
        schemas.insert(
            DeviceType::Cpustat,
            DeviceType::Cpustat.schema(CpuArch::SandyBridge),
        );
        HostHeader {
            hostname: host.into(),
            arch: CpuArch::SandyBridge,
            schemas,
        }
    }

    fn sample(t: u64, jobid: &str, mdc_reqs: u64, net_bytes: u64) -> Sample {
        sample_cpu(t, jobid, mdc_reqs, net_bytes, t * 100)
    }

    fn sample_cpu(t: u64, jobid: &str, mdc_reqs: u64, net_bytes: u64, cpu_user: u64) -> Sample {
        Sample {
            time: SimTimeRepr::from(SimTime::from_secs(t)),
            jobids: vec![jobid.to_string()],
            marks: vec![],
            devices: vec![
                DeviceRecord {
                    dev_type: DeviceType::Mdc,
                    instance: "scratch".into(),
                    values: vec![mdc_reqs, mdc_reqs * 200].into(),
                },
                DeviceRecord {
                    dev_type: DeviceType::Net,
                    instance: "eth0".into(),
                    values: vec![net_bytes / 2, 0, net_bytes / 2, 0].into(),
                },
                DeviceRecord {
                    dev_type: DeviceType::Cpustat,
                    instance: "cpu".into(),
                    values: vec![cpu_user, 0, 0, 0, 0].into(),
                },
            ],
            processes: vec![],
        }
    }

    #[test]
    fn metadata_storm_detected_on_second_sample() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        // First sample: baseline only, no alert possible.
        assert!(a
            .observe(SimTime::from_secs(0), &h, &sample(0, "77", 0, 0))
            .is_empty());
        // 600 s later: 140k req/s.
        let alerts = a.observe(
            SimTime::from_secs(600),
            &h,
            &sample(600, "77", 140_000 * 600, 0),
        );
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].kind, AlertKind::MetadataStorm);
        assert_eq!(alerts[0].jobids, vec!["77"]);
        assert!((alerts[0].value - 140_000.0).abs() < 1.0);
        // The streamed §V-A flag trips on the same sample.
        assert_eq!(alerts[1].kind, AlertKind::JobFlag(Flag::HighMetadataRate));
        assert!(a.job_flags("77").contains(Flag::HighMetadataRate));
        // Continuing storm: no duplicate alert for the same job.
        let again = a.observe(
            SimTime::from_secs(1200),
            &h,
            &sample(1200, "77", 2 * 140_000 * 600, 0),
        );
        assert!(again.is_empty());
        assert_eq!(a.alerts().len(), 2);
    }

    #[test]
    fn quiet_host_never_alerts() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        for k in 0..10u64 {
            let s = sample(600 * k, "5", 10 * 600 * k, 1000 * 600 * k);
            assert!(a.observe(SimTime::from_secs(600 * k), &h, &s).is_empty());
        }
        assert!(a.anomaly_score(Sym::new("c1")) < 1e-9);
    }

    #[test]
    fn gige_traffic_detected() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        a.observe(SimTime::from_secs(0), &h, &sample(0, "9", 0, 0));
        let alerts = a.observe(
            SimTime::from_secs(600),
            &h,
            &sample(600, "9", 0, 90_000_000 * 600),
        );
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].kind, AlertKind::GigeTraffic);
        assert_eq!(alerts[1].kind, AlertKind::JobFlag(Flag::HighGigE));
    }

    #[test]
    fn silent_node_detected() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        a.observe(SimTime::from_secs(0), &h, &sample(0, "1", 0, 0));
        assert!(a.check_silence(SimTime::from_secs(1200)).is_empty());
        let alerts = a.check_silence(SimTime::from_secs(3000));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::SilentNode);
        // No duplicates.
        assert!(a.check_silence(SimTime::from_secs(4000)).is_empty());
    }

    #[test]
    fn separate_jobs_alert_separately() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        for (host, job) in [("c1", "100"), ("c2", "200")] {
            let h = header(host);
            a.observe(SimTime::from_secs(0), &h, &sample(0, job, 0, 0));
            let alerts = a.observe(
                SimTime::from_secs(600),
                &h,
                &sample(600, job, 50_000 * 600, 0),
            );
            assert_eq!(alerts.len(), 2, "{job}");
        }
        assert_eq!(a.alerts_of(AlertKind::MetadataStorm).len(), 2);
    }

    #[test]
    fn sudden_drop_detected_by_zscore() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        // Steady CPU rate (with small jitter so std > 0), then collapse.
        let mut cpu = 0u64;
        for k in 0..8u64 {
            cpu += 600 * (1000 + (k % 3));
            let s = sample_cpu(600 * k, "j1", 0, 0, cpu);
            let alerts = a.observe(SimTime::from_secs(600 * k), &h, &s);
            assert!(alerts.is_empty(), "step {k}: {alerts:?}");
        }
        // CPU activity collapses to ~0.
        let s = sample_cpu(600 * 8, "j1", 0, 0, cpu + 1);
        let alerts = a.observe(SimTime::from_secs(600 * 8), &h, &s);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].kind, AlertKind::SuddenDrop);
        assert!(alerts[0].value < -3.0);
        assert!(a.anomaly_score(Sym::new("c1")) >= 3.0);
    }

    #[test]
    fn sudden_rise_detected_by_zscore() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        let mut cpu = 0u64;
        for k in 0..8u64 {
            cpu += 600 * (1000 + (k % 3));
            a.observe(
                SimTime::from_secs(600 * k),
                &h,
                &sample_cpu(600 * k, "j2", 0, 0, cpu),
            );
        }
        cpu += 600 * 50_000; // compile step ends, full-rate compute
        let alerts = a.observe(
            SimTime::from_secs(600 * 8),
            &h,
            &sample_cpu(600 * 8, "j2", 0, 0, cpu),
        );
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].kind, AlertKind::SuddenRise);
    }

    #[test]
    fn anomaly_score_decays_when_quiet() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        let mut cpu = 0u64;
        for k in 0..8u64 {
            cpu += 600 * (1000 + (k % 3));
            a.observe(
                SimTime::from_secs(600 * k),
                &h,
                &sample_cpu(600 * k, "j3", 0, 0, cpu),
            );
        }
        cpu += 1;
        a.observe(
            SimTime::from_secs(600 * 8),
            &h,
            &sample_cpu(600 * 8, "j3", 0, 0, cpu),
        );
        let hot = a.anomaly_score(Sym::new("c1"));
        assert!(hot >= 3.0);
        // Quiet again: score decays toward zero.
        for k in 9..30u64 {
            cpu += 600;
            a.observe(
                SimTime::from_secs(600 * k),
                &h,
                &sample_cpu(600 * k, "j3", 0, 0, cpu),
            );
        }
        assert!(a.anomaly_score(Sym::new("c1")) < hot * 0.5);
    }

    #[test]
    fn alerts_record_detection_latency() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        a.observe(SimTime::from_secs(0), &h, &sample(0, "77", 0, 0));
        // Sample stamped at t=600 but drained 30 s later.
        let alerts = a.observe(
            SimTime::from_secs(630),
            &h,
            &sample(600, "77", 140_000 * 600, 0),
        );
        assert!(!alerts.is_empty());
        assert_eq!(alerts[0].latency_secs, 30.0);
    }

    #[test]
    fn finish_job_matches_batch_and_drops_state() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let h = header("c1");
        a.observe(SimTime::from_secs(0), &h, &sample(0, "42", 0, 0));
        a.observe(
            SimTime::from_secs(600),
            &h,
            &sample(600, "42", 140_000 * 600, 0),
        );
        assert_eq!(a.live_job_streams(), 1);
        // The finished job's batch metrics show no storm at all (say
        // the storm window was short): final verdict follows the batch.
        let ctx = FlagContext {
            queue_name: "normal".to_string(),
            node_memory_gb: 34.36,
        };
        let mut m = JobMetrics::new();
        m.set(MetricId::MetaDataRate, 12.0);
        let final_set = a.finish_job("42", &ctx, &m);
        assert!(final_set.is_empty());
        assert_eq!(
            final_set.iter().collect::<Vec<_>>(),
            FlagRules::default().evaluate(&ctx, &m)
        );
        assert_eq!(a.live_job_streams(), 0);
    }
}
