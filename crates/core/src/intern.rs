//! Re-export of the shared interning layer.
//!
//! The intern table lives at the bottom of the dependency graph (in
//! `tacc-simnode`, which every sample-path crate already depends on) so
//! that collectors, the broker framing, the accumulator, and the tsdb
//! can all share one table. This module re-exports it under the
//! top-level façade so downstream users reach it as `tacc_core::intern`
//! without caring where in the graph it lives.

pub use tacc_simnode::intern::{Sym, SymbolTable};
