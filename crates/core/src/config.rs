//! System configuration.

use tacc_simnode::topology::NodeTopology;
use tacc_simnode::{SimDuration, SimTime};

/// Which §III-A operation mode the system runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Fig. 1: node-local logs, daily rotation, staggered daily rsync.
    Cron {
        /// Second-of-day when rotation happens (cron).
        rotate_second: u64,
        /// Base second-of-day of the staggered per-node sync; each node
        /// adds a deterministic offset within `sync_spread_secs`.
        sync_second: u64,
        /// Width of the random per-node sync window.
        sync_spread_secs: u64,
    },
    /// Fig. 2: `tacc_statsd` publishing every sample to the broker, a
    /// consumer archiving in real time.
    Daemon {
        /// Broker queue name.
        queue: String,
    },
}

impl Mode {
    /// The default cron mode (midnight rotation, 03:00–05:00 sync).
    pub fn cron() -> Mode {
        Mode::Cron {
            rotate_second: 0,
            sync_second: 3 * 3600,
            sync_spread_secs: 2 * 3600,
        }
    }

    /// The default daemon mode.
    pub fn daemon() -> Mode {
        Mode::Daemon {
            queue: "tacc_stats".to_string(),
        }
    }
}

/// Full system configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Hostname prefix (e.g. `c401`).
    pub host_prefix: String,
    /// Normal-pool nodes.
    pub n_nodes: usize,
    /// Largemem-pool nodes.
    pub n_largemem: usize,
    /// Node hardware description for the normal pool.
    pub topology: NodeTopology,
    /// Node hardware for the largemem pool.
    pub largemem_topology: NodeTopology,
    /// Operation mode.
    pub mode: Mode,
    /// Sampling interval (paper default: 10 minutes).
    pub interval: SimDuration,
    /// Simulation step (granularity of scheduling/cluster advance).
    pub step: SimDuration,
    /// Simulation start time.
    pub start: SimTime,
    /// Whether to mirror samples into the time-series database (§VI-A).
    pub enable_tsdb: bool,
    /// Directory for the durable tsdb (per-shard WAL + segment files).
    /// `None` keeps the mirror purely in memory; `Some(dir)` opens (or
    /// crash-recovers) a persistent store there, so a restarted system
    /// resumes with every fsynced point intact.
    pub tsdb_dir: Option<std::path::PathBuf>,
    /// Whether the XALT plugin records per-job modules/libraries
    /// (§IV-B: the detail view shows them "only if the XALT plugin is
    /// enabled").
    pub enable_xalt: bool,
    /// RNG seed (stagger offsets etc.).
    pub seed: u64,
}

impl SystemConfig {
    /// A small Stampede-like test system.
    pub fn small(n_nodes: usize, mode: Mode) -> SystemConfig {
        SystemConfig {
            host_prefix: "c401".to_string(),
            n_nodes,
            n_largemem: 0,
            topology: NodeTopology::stampede(),
            largemem_topology: NodeTopology::stampede_largemem(),
            mode,
            interval: SimDuration::from_mins(10),
            step: SimDuration::from_secs(60),
            start: SimTime::from_secs(tacc_simnode::clock::Q4_2015_START_SECS),
            enable_tsdb: false,
            tsdb_dir: None,
            enable_xalt: true,
            seed: 42,
        }
    }

    /// Total nodes (normal + largemem).
    pub fn total_nodes(&self) -> usize {
        self.n_nodes + self.n_largemem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = SystemConfig::small(4, Mode::daemon());
        assert_eq!(c.total_nodes(), 4);
        assert_eq!(c.interval.as_secs(), 600);
        assert!(matches!(c.mode, Mode::Daemon { .. }));
        assert!(matches!(Mode::cron(), Mode::Cron { .. }));
    }
}
