//! # tacc-core — the assembled monitoring system
//!
//! The top-level façade tying the substrates together into the system of
//! the paper:
//!
//! * [`config`] — cluster + monitoring-mode configuration,
//! * [`system`] — [`system::MonitoringSystem`]: simulated cluster +
//!   scheduler + per-node collectors (cron or daemon mode) + broker +
//!   consumer + archive + metric pipeline + job database + optional
//!   time-series database, driven in simulated time,
//! * [`population`] — the fast path for §V-scale experiments: schedule a
//!   full synthetic quarter for queue dynamics, then simulate each job's
//!   nodes in isolation (parallelized with crossbeam) to compute its
//!   Table I metrics and ingest them,
//! * [`online`] — §VI-B automated real-time analysis: watches the
//!   daemon-mode sample stream and raises alerts (e.g. metadata storms)
//!   within a sampling interval of onset, long before the cron-mode
//!   archive would even contain the data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod intern;
pub mod online;
pub mod pool;
pub mod population;
pub mod system;

pub use config::{Mode, SystemConfig};
pub use intern::{Sym, SymbolTable};
pub use online::{AdaptiveConfig, Alert, AlertKind, OnlineAnalyzer, OnlineConfig};
pub use pool::{Scratch, WorkerPool};
pub use population::{PopulationResult, PopulationRunner};
pub use system::{DeliveryReport, MonitoringSystem};
