//! Per-shard write-ahead log: record framing, the batched-fsync
//! writer, and the torn-tail-tolerant scanner.
//!
//! Every record in the WAL (and, reusing the same framing, in the
//! segment and manifest files) is one *frame*:
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload bytes]
//! ```
//!
//! CRC32 (IEEE, the zlib polynomial) over the payload makes torn and
//! bit-flipped tails detectable: a scanner reads frames until the
//! bytes run out mid-frame or a checksum fails, then stops — the valid
//! prefix is exactly the records that were wholly persisted. Nothing
//! ever panics on hostile bytes.
//!
//! WAL payloads (first byte is the record kind):
//!
//! * `0x01` **Header** — format version, shard generation, and
//!   `base_blocks`: how many leading segment blocks recovery installs
//!   before replaying (a compaction checkpoint persists the whole
//!   sealed state and starts its WAL with this header).
//! * `0x02` **KeyDef** — interns a [`SeriesKey`] (four varint-length
//!   strings) under a small per-WAL integer id, so the steady-state
//!   point record carries ~2 bytes of key instead of ~40 of strings.
//! * `0x03` **Point** — key id, timestamp varint, raw `f64` bits.
//! * `0x04` **Seal** — "segment block `ordinal` is durable; its points
//!   are the current replay head of its series." Appended only *after*
//!   the segment append + fsync, so a marker proves its block.
//!
//! Durability contract of [`WalWriter`]: `append_point` stages one
//! frame and fsyncs every `sync_every` records (so at most
//! `sync_every` trailing points are at risk); a short write is
//! repaired by truncating back to the frame boundary and re-appending
//! once, which keeps the file a clean frame sequence; fsync failures
//! leave the durable watermark where it was and are surfaced to the
//! caller and counted.
//!
//! This module is on the `cargo xtask lint` deny list: no panicking
//! constructs, no unchecked indexing.

use crate::block::{get_varint, put_varint};
use crate::series::SeriesKey;
use crate::vfs::{DiskError, DurFile};
use std::collections::HashMap;

/// Frame header size: u32 length + u32 CRC.
pub(crate) const FRAME_HEADER: usize = 8;

/// Hard cap on one frame's payload (a segment block record tops out
/// well under this); anything larger during a scan is treated as a
/// corrupt length word, not an allocation request.
pub(crate) const MAX_PAYLOAD: usize = 1 << 24;

/// One CRC32 (IEEE) table entry: eight shift-xor rounds over `i`
/// (only the low byte matters). `const` so the compiler can fold it;
/// written entry-at-a-time so the hot path carries no indexing.
const fn crc_entry(i: u32) -> u32 {
    let mut c = i & 0xFF;
    let mut k = 0;
    while k < 8 {
        c = if c & 1 != 0 {
            0xEDB8_8320 ^ (c >> 1)
        } else {
            c >> 1
        };
        k += 1;
    }
    c
}

/// CRC32 (IEEE) of `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = crc_entry(c ^ u32::from(b)) ^ (c >> 8);
    }
    !c
}

/// Append one frame (header + payload) to `out`.
pub(crate) fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Why a [`FrameScan`] stopped before the end of its input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ScanStop {
    /// All input consumed; every byte belonged to a valid frame.
    Clean,
    /// The trailing bytes are shorter than one whole frame.
    TornTail,
    /// A frame's checksum (or length word) failed — bit rot or a torn
    /// write that happened to leave enough bytes.
    BadFrame,
}

/// Iterator over the valid frame payloads of a byte buffer. Stops at
/// the first torn or corrupt frame; [`FrameScan::valid_len`] then
/// tells the writer where the clean prefix ends.
pub(crate) struct FrameScan<'a> {
    bytes: &'a [u8],
    pos: usize,
    stop: ScanStop,
    done: bool,
}

impl<'a> FrameScan<'a> {
    /// Scan `bytes` from the start.
    pub(crate) fn new(bytes: &'a [u8]) -> FrameScan<'a> {
        FrameScan {
            bytes,
            pos: 0,
            stop: ScanStop::Clean,
            done: false,
        }
    }

    /// Next valid payload, or `None` at end / first bad frame.
    #[allow(clippy::should_implement_trait)]
    pub(crate) fn next(&mut self) -> Option<&'a [u8]> {
        if self.done {
            return None;
        }
        let remaining = self.bytes.len() - self.pos;
        if remaining == 0 {
            self.done = true;
            return None;
        }
        if remaining < FRAME_HEADER {
            self.done = true;
            self.stop = ScanStop::TornTail;
            return None;
        }
        let len_b = self.bytes.get(self.pos..self.pos + 4)?;
        let crc_b = self.bytes.get(self.pos + 4..self.pos + 8)?;
        let len = u32::from_le_bytes(len_b.try_into().ok()?) as usize;
        let want = u32::from_le_bytes(crc_b.try_into().ok()?);
        if len > MAX_PAYLOAD {
            self.done = true;
            self.stop = ScanStop::BadFrame;
            return None;
        }
        let start = self.pos + FRAME_HEADER;
        let Some(payload) = self.bytes.get(start..start + len) else {
            self.done = true;
            self.stop = ScanStop::TornTail;
            return None;
        };
        if crc32(payload) != want {
            self.done = true;
            self.stop = ScanStop::BadFrame;
            return None;
        }
        self.pos = start + len;
        Some(payload)
    }

    /// Bytes covered by valid frames so far (the clean prefix).
    pub(crate) fn valid_len(&self) -> u64 {
        self.pos as u64
    }

    /// Bytes past the clean prefix (torn or corrupt). Test-facing:
    /// production callers account torn bytes against their own applied
    /// boundary (which can sit before the last structurally valid
    /// frame).
    #[cfg(test)]
    pub(crate) fn torn_bytes(&self) -> u64 {
        (self.bytes.len() - self.pos) as u64
    }

    /// Why the scan stopped.
    #[cfg(test)]
    pub(crate) fn stop(&self) -> ScanStop {
        self.stop
    }
}

// ---------------------------------------------------------------------
// WAL record payloads
// ---------------------------------------------------------------------

const KIND_HEADER: u8 = 0x01;
const KIND_KEYDEF: u8 = 0x02;
const KIND_POINT: u8 = 0x03;
const KIND_SEAL: u8 = 0x04;

/// WAL format version (bumped on incompatible payload changes).
const WAL_VERSION: u8 = 1;

/// One decoded WAL record.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum WalEntry {
    /// Generation header with the compaction checkpoint block count.
    Header {
        /// Shard generation this WAL belongs to.
        gen: u64,
        /// Leading segment blocks to install before replay.
        base_blocks: u64,
    },
    /// Key interning definition.
    KeyDef {
        /// Per-WAL integer id.
        id: u64,
        /// The interned series key.
        key: SeriesKey,
    },
    /// One ingested point.
    Point {
        /// Id from a preceding [`WalEntry::KeyDef`].
        key_id: u64,
        /// Unix seconds.
        t: u64,
        /// Value bits.
        v: f64,
    },
    /// Segment block `ordinal` is durable.
    Seal {
        /// Block ordinal within this generation's segment file.
        ordinal: u64,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a str> {
    let len = get_varint(bytes, pos)? as usize;
    let s = bytes.get(*pos..pos.checked_add(len)?)?;
    *pos += len;
    std::str::from_utf8(s).ok()
}

/// Encode the header payload.
pub(crate) fn encode_header(out: &mut Vec<u8>, gen: u64, base_blocks: u64) {
    out.push(KIND_HEADER);
    out.push(WAL_VERSION);
    put_varint(out, gen);
    put_varint(out, base_blocks);
}

/// Decode one WAL payload. `None` on malformed bytes (caller counts it
/// as corruption and stops the scan).
pub(crate) fn decode_entry(payload: &[u8]) -> Option<WalEntry> {
    let (&kind, rest) = payload.split_first()?;
    let mut pos = 0usize;
    match kind {
        KIND_HEADER => {
            let (&version, rest) = rest.split_first()?;
            if version != WAL_VERSION {
                return None;
            }
            let gen = get_varint(rest, &mut pos)?;
            let base_blocks = get_varint(rest, &mut pos)?;
            Some(WalEntry::Header { gen, base_blocks })
        }
        KIND_KEYDEF => {
            let id = get_varint(rest, &mut pos)?;
            let host = get_str(rest, &mut pos)?;
            let dev_type = get_str(rest, &mut pos)?;
            let device = get_str(rest, &mut pos)?;
            let event = get_str(rest, &mut pos)?;
            Some(WalEntry::KeyDef {
                id,
                key: SeriesKey::new(host, dev_type, device, event),
            })
        }
        KIND_POINT => {
            let key_id = get_varint(rest, &mut pos)?;
            let t = get_varint(rest, &mut pos)?;
            let bits = rest.get(pos..pos + 8)?;
            Some(WalEntry::Point {
                key_id,
                t,
                v: f64::from_bits(u64::from_le_bytes(bits.try_into().ok()?)),
            })
        }
        KIND_SEAL => {
            let ordinal = get_varint(rest, &mut pos)?;
            Some(WalEntry::Seal { ordinal })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Append-side of one shard's WAL (see module docs for the format and
/// durability contract).
pub(crate) struct WalWriter {
    file: Box<dyn DurFile>,
    /// Frame staging buffer, reused across appends.
    frame: Vec<u8>,
    /// Payload staging buffer, reused across appends.
    payload: Vec<u8>,
    key_ids: HashMap<SeriesKey, u64>,
    next_key_id: u64,
    /// Point records appended to the file (whether or not synced).
    pub(crate) appended_points: u64,
    /// Point records covered by the last successful sync.
    pub(crate) synced_points: u64,
    /// Point records whose append failed (at-risk, in memory only).
    pub(crate) failed_points: u64,
    /// Records staged since the last sync attempt.
    pending: u64,
    sync_every: u64,
    /// fsync attempts that failed.
    pub(crate) sync_failures: u64,
}

impl WalWriter {
    /// Wrap an already-positioned file (recovery path). `key_ids` and
    /// `appended_points` describe the surviving prefix so sequencing
    /// continues where the log left off; the on-disk prefix counts as
    /// synced (it survived, by definition).
    // alloc: cold-fn (writer construction; the frame/payload buffers are reused per append)
    pub(crate) fn open(
        file: Box<dyn DurFile>,
        key_ids: HashMap<SeriesKey, u64>,
        appended_points: u64,
        sync_every: u64,
    ) -> WalWriter {
        let next_key_id = key_ids.values().copied().max().map(|m| m + 1).unwrap_or(0);
        WalWriter {
            file,
            frame: Vec::new(),
            payload: Vec::new(),
            key_ids,
            next_key_id,
            appended_points,
            synced_points: appended_points,
            failed_points: 0,
            pending: 0,
            sync_every: sync_every.max(1),
            sync_failures: 0,
        }
    }

    /// Start a fresh WAL file: header frame, then fsync (a generation
    /// must be durable before the manifest can commit to it).
    // alloc: cold-fn (generation creation: header write + fsync, once per generation)
    pub(crate) fn create(
        mut file: Box<dyn DurFile>,
        gen: u64,
        base_blocks: u64,
        sync_every: u64,
    ) -> Result<WalWriter, DiskError> {
        let mut payload = Vec::new();
        encode_header(&mut payload, gen, base_blocks);
        let mut frame = Vec::new();
        put_frame(&mut frame, &payload);
        append_repairing(&mut *file, &frame)?;
        file.sync()?;
        Ok(WalWriter {
            file,
            frame,
            payload,
            key_ids: HashMap::new(),
            next_key_id: 0,
            appended_points: 0,
            synced_points: 0,
            failed_points: 0,
            pending: 0,
            sync_every: sync_every.max(1),
            sync_failures: 0,
        })
    }

    /// Current file length.
    pub(crate) fn bytes(&self) -> u64 {
        self.file.len()
    }

    /// Points appended but not yet covered by a successful sync.
    #[cfg(test)]
    pub(crate) fn unsynced_points(&self) -> u64 {
        self.appended_points - self.synced_points
    }

    /// The current key-id map (compaction seeds the next generation's
    /// writer from the store instead, so this is test-only).
    #[cfg(test)]
    pub(crate) fn n_keys(&self) -> usize {
        self.key_ids.len()
    }

    /// Append one point record (plus a key definition on first sight
    /// of the key), fsyncing when the batch fills. On failure the
    /// point is *not* durable; the caller counts it at-risk.
    pub(crate) fn append_point(
        &mut self,
        key: &SeriesKey,
        t: u64,
        v: f64,
    ) -> Result<(), DiskError> {
        let key_id = match self.key_ids.get(key) {
            Some(&id) => id,
            None => {
                let id = self.next_key_id;
                self.payload.clear();
                self.payload.push(KIND_KEYDEF);
                put_varint(&mut self.payload, id);
                put_str(&mut self.payload, key.host.as_str());
                put_str(&mut self.payload, key.dev_type.as_str());
                put_str(&mut self.payload, key.device.as_str());
                put_str(&mut self.payload, key.event.as_str());
                self.frame.clear();
                put_frame(&mut self.frame, &self.payload);
                append_repairing(&mut *self.file, &self.frame)?;
                // alloc: cold (first sight of a series key; every later point reuses the id)
                self.key_ids.insert(key.clone(), id);
                self.next_key_id = id + 1;
                id
            }
        };
        self.payload.clear();
        self.payload.push(KIND_POINT);
        put_varint(&mut self.payload, key_id);
        put_varint(&mut self.payload, t);
        self.payload.extend_from_slice(&v.to_bits().to_le_bytes());
        self.frame.clear();
        put_frame(&mut self.frame, &self.payload);
        match append_repairing(&mut *self.file, &self.frame) {
            Ok(()) => {
                self.appended_points += 1;
                self.pending += 1;
                if self.pending >= self.sync_every {
                    self.sync()?;
                }
                Ok(())
            }
            Err(e) => {
                self.failed_points += 1;
                Err(e)
            }
        }
    }

    /// Append a seal marker (the caller has already fsynced the
    /// segment block it names). Rides the next batched sync.
    pub(crate) fn append_seal(&mut self, ordinal: u64) -> Result<(), DiskError> {
        self.payload.clear();
        self.payload.push(KIND_SEAL);
        put_varint(&mut self.payload, ordinal);
        self.frame.clear();
        put_frame(&mut self.frame, &self.payload);
        append_repairing(&mut *self.file, &self.frame)
    }

    /// fsync now. On success the durable watermark advances to cover
    /// every appended point; on failure it stays put and the failure
    /// is counted.
    pub(crate) fn sync(&mut self) -> Result<(), DiskError> {
        match self.file.sync() {
            Ok(()) => {
                self.synced_points = self.appended_points;
                self.pending = 0;
                Ok(())
            }
            Err(e) => {
                self.sync_failures += 1;
                Err(e)
            }
        }
    }
}

/// Append `frame`, repairing one short write by truncating back to the
/// pre-append boundary and retrying once — so the file only ever grows
/// by whole frames (modulo a kill, whose torn tail recovery skips).
pub(crate) fn append_repairing(file: &mut dyn DurFile, frame: &[u8]) -> Result<(), DiskError> {
    let boundary = file.len();
    match file.append(frame) {
        Ok(()) => Ok(()),
        Err(DiskError::ShortWrite { .. }) => {
            // crash-order: repair (short-write repair: rewind to the last full-frame boundary before retrying)
            file.truncate(boundary)?;
            file.append(frame)
        }
        Err(e) => Err(e),
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::vfs::{MemVfs, Vfs};
    use proptest::prelude::*;
    use tacc_simnode::faults::DiskFaultPlan;

    fn key(i: u64) -> SeriesKey {
        SeriesKey::new(&format!("c{i:03}"), "mdc", "scratch", "reqs")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn frames_round_trip_and_detect_tears() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"one");
        put_frame(&mut buf, b"two!");
        put_frame(&mut buf, b"");
        let mut scan = FrameScan::new(&buf);
        assert_eq!(scan.next(), Some(&b"one"[..]));
        assert_eq!(scan.next(), Some(&b"two!"[..]));
        assert_eq!(scan.next(), Some(&b""[..]));
        assert_eq!(scan.next(), None);
        assert_eq!(scan.stop(), ScanStop::Clean);
        assert_eq!(scan.valid_len(), buf.len() as u64);

        // Torn mid-payload: the last whole frame still reads.
        let cut = buf.len() - 2;
        let mut scan = FrameScan::new(&buf[..cut]);
        assert_eq!(scan.next(), Some(&b"one"[..]));
        assert_eq!(scan.next(), Some(&b"two!"[..]));
        assert_eq!(scan.next(), None);
        assert_eq!(scan.stop(), ScanStop::TornTail);
        assert_eq!(scan.torn_bytes(), (cut as u64) - scan.valid_len());

        // Bit flip in a payload: scan stops at the bad frame.
        let mut bad = buf.clone();
        bad[FRAME_HEADER + 1] ^= 0x40;
        let mut scan = FrameScan::new(&bad);
        assert_eq!(scan.next(), None);
        assert_eq!(scan.stop(), ScanStop::BadFrame);
        assert_eq!(scan.valid_len(), 0);
    }

    #[test]
    fn entries_encode_and_decode() {
        let mut p = Vec::new();
        encode_header(&mut p, 7, 42);
        assert_eq!(
            decode_entry(&p),
            Some(WalEntry::Header {
                gen: 7,
                base_blocks: 42
            })
        );
        assert_eq!(decode_entry(&[]), None);
        assert_eq!(decode_entry(&[0x77, 1, 2]), None, "unknown kind");
        assert_eq!(decode_entry(&[KIND_POINT]), None, "truncated point");
    }

    #[test]
    fn writer_interns_keys_and_scanner_replays() {
        let vfs = MemVfs::new();
        let file = vfs.open_append("w", 0).unwrap();
        let mut w = WalWriter::create(file, 3, 0, 4).unwrap();
        for i in 0..10u64 {
            w.append_point(&key(i % 2), 100 + i, i as f64).unwrap();
        }
        w.append_seal(0).unwrap();
        w.sync().unwrap();
        assert_eq!(w.n_keys(), 2, "two distinct keys interned once each");
        assert_eq!(w.appended_points, 10);
        assert_eq!(w.unsynced_points(), 0);

        let bytes = vfs.read("w").unwrap().unwrap();
        let mut scan = FrameScan::new(&bytes);
        let mut entries = Vec::new();
        while let Some(p) = scan.next() {
            entries.push(decode_entry(p).expect("all payloads decode"));
        }
        assert_eq!(scan.stop(), ScanStop::Clean);
        assert_eq!(
            entries.first(),
            Some(&WalEntry::Header {
                gen: 3,
                base_blocks: 0
            })
        );
        let points = entries
            .iter()
            .filter(|e| matches!(e, WalEntry::Point { .. }))
            .count();
        let keydefs = entries
            .iter()
            .filter(|e| matches!(e, WalEntry::KeyDef { .. }))
            .count();
        let seals = entries
            .iter()
            .filter(|e| matches!(e, WalEntry::Seal { .. }))
            .count();
        assert_eq!((points, keydefs, seals), (10, 2, 1));
    }

    #[test]
    fn batched_sync_advances_watermark_in_steps() {
        let vfs = MemVfs::new();
        let file = vfs.open_append("w", 0).unwrap();
        let mut w = WalWriter::create(file, 0, 0, 4).unwrap();
        for i in 0..6u64 {
            w.append_point(&key(0), i, 0.0).unwrap();
        }
        // 4 synced by the batch, 2 pending.
        assert_eq!(w.synced_points, 4);
        assert_eq!(w.unsynced_points(), 2);
        w.sync().unwrap();
        assert_eq!(w.unsynced_points(), 0);
    }

    #[test]
    fn short_write_is_repaired_in_place() {
        // Ordinal 2 short-writes (0 is the header, 1 the keydef).
        let plan = DiskFaultPlan {
            short_write_at: vec![2],
            ..DiskFaultPlan::default()
        };
        let vfs = MemVfs::with_faults(plan);
        let file = vfs.open_append("w", 0).unwrap();
        let mut w = WalWriter::create(file, 0, 0, 64).unwrap();
        for i in 0..3u64 {
            w.append_point(&key(0), i, 1.0).unwrap();
        }
        w.sync().unwrap();
        let bytes = vfs.read("w").unwrap().unwrap();
        let mut scan = FrameScan::new(&bytes);
        let mut points = 0;
        while let Some(p) = scan.next() {
            if matches!(decode_entry(p), Some(WalEntry::Point { .. })) {
                points += 1;
            }
        }
        assert_eq!(
            scan.stop(),
            ScanStop::Clean,
            "repair left whole frames only"
        );
        assert_eq!(points, 3);
    }

    #[test]
    fn sync_failure_is_counted_and_watermark_holds() {
        let plan = DiskFaultPlan {
            sync_fail_at: vec![1], // 0 is the header sync
            ..DiskFaultPlan::default()
        };
        let vfs = MemVfs::with_faults(plan);
        let file = vfs.open_append("w", 0).unwrap();
        let mut w = WalWriter::create(file, 0, 0, 64).unwrap();
        w.append_point(&key(0), 1, 1.0).unwrap();
        assert!(w.sync().is_err());
        assert_eq!(w.sync_failures, 1);
        assert_eq!(w.unsynced_points(), 1);
        w.sync().unwrap();
        assert_eq!(w.unsynced_points(), 0);
    }

    proptest! {
        /// Frame streams survive arbitrary truncation: the scanner
        /// yields exactly the records that fit wholly inside the cut,
        /// in order, and never panics.
        #[test]
        fn truncated_streams_yield_exact_prefixes(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..40), 0..20),
            cut_frac in 0.0f64..1.0,
        ) {
            let mut buf = Vec::new();
            let mut ends = Vec::new();
            for p in &payloads {
                put_frame(&mut buf, p);
                ends.push(buf.len());
            }
            let cut = (buf.len() as f64 * cut_frac) as usize;
            let whole = ends.iter().filter(|&&e| e <= cut).count();
            let mut scan = FrameScan::new(&buf[..cut]);
            let mut got = Vec::new();
            while let Some(p) = scan.next() {
                got.push(p.to_vec());
            }
            prop_assert_eq!(got.len(), whole);
            for (g, w) in got.iter().zip(payloads.iter()) {
                prop_assert_eq!(g, w);
            }
            if whole < payloads.len() && cut > ends.get(whole.wrapping_sub(1)).copied().unwrap_or(0) {
                prop_assert_eq!(scan.stop(), ScanStop::TornTail);
            }
        }

        /// A single flipped bit anywhere in the stream never panics
        /// the scanner and never corrupts a record silently: every
        /// yielded record is bit-identical to one of the originals at
        /// its position (the flip either lands in a record that then
        /// fails its CRC, stopping the scan, or in a length/crc word,
        /// also stopping the scan).
        #[test]
        fn bit_flips_never_yield_corrupt_records(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..30), 1..12),
            flip_byte in any::<u64>(),
            flip_bit in 0u8..8,
        ) {
            let mut buf = Vec::new();
            for p in &payloads {
                put_frame(&mut buf, p);
            }
            let at = (flip_byte % buf.len() as u64) as usize;
            buf[at] ^= 1 << flip_bit;
            let mut scan = FrameScan::new(&buf);
            let mut i = 0usize;
            while let Some(p) = scan.next() {
                // CRC32 catches every single-bit error, so any record
                // that still scans must be unmodified — i.e. the flip
                // is at or after this record's end.
                prop_assert!(i < payloads.len());
                prop_assert_eq!(p, &payloads[i][..]);
                i += 1;
            }
        }

        /// WAL entries round-trip through encode/decode for arbitrary
        /// field values, including non-finite floats.
        #[test]
        fn point_entries_round_trip(
            kid in any::<u64>(), t in any::<u64>(), bits in any::<u64>()
        ) {
            let mut p = Vec::new();
            p.push(KIND_POINT);
            put_varint(&mut p, kid);
            put_varint(&mut p, t);
            p.extend_from_slice(&bits.to_le_bytes());
            match decode_entry(&p) {
                Some(WalEntry::Point { key_id, t: dt, v }) => {
                    prop_assert_eq!(key_id, kid);
                    prop_assert_eq!(dt, t);
                    prop_assert_eq!(v.to_bits(), bits);
                }
                other => prop_assert!(false, "bad decode: {:?}", other),
            }
        }
    }
}
