//! Series keys and tag filters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The 4-tuple of tags labelling every series (§VI-A): host name, device
/// type, device name, and event name.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeriesKey {
    /// Host name, e.g. `c401-0001`.
    pub host: String,
    /// Device type, e.g. `mdc`.
    pub dev_type: String,
    /// Device (instance) name, e.g. `scratch`.
    pub device: String,
    /// Event name, e.g. `reqs`.
    pub event: String,
}

impl SeriesKey {
    /// Shorthand constructor.
    pub fn new(host: &str, dev_type: &str, device: &str, event: &str) -> SeriesKey {
        SeriesKey {
            host: host.to_string(),
            dev_type: dev_type.to_string(),
            device: device.to_string(),
            event: event.to_string(),
        }
    }
}

impl fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}:{}",
            self.dev_type, self.device, self.event, self.host
        )
    }
}

/// A filter over series keys: `None` on a tag means "any value"
/// (aggregate along that tag).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TagFilter {
    /// Required host (None = all hosts).
    pub host: Option<String>,
    /// Required device type.
    pub dev_type: Option<String>,
    /// Required device name.
    pub device: Option<String>,
    /// Required event name.
    pub event: Option<String>,
}

impl TagFilter {
    /// Match every series.
    pub fn any() -> TagFilter {
        TagFilter::default()
    }

    /// Restrict to a host.
    pub fn host(mut self, h: &str) -> Self {
        self.host = Some(h.to_string());
        self
    }

    /// Restrict to a device type.
    pub fn dev_type(mut self, d: &str) -> Self {
        self.dev_type = Some(d.to_string());
        self
    }

    /// Restrict to a device name.
    pub fn device(mut self, d: &str) -> Self {
        self.device = Some(d.to_string());
        self
    }

    /// Restrict to an event name.
    pub fn event(mut self, e: &str) -> Self {
        self.event = Some(e.to_string());
        self
    }

    /// Whether `key` satisfies the filter.
    pub fn matches(&self, key: &SeriesKey) -> bool {
        fn ok(want: &Option<String>, have: &str) -> bool {
            want.as_deref().map(|w| w == have).unwrap_or(true)
        }
        ok(&self.host, &key.host)
            && ok(&self.dev_type, &key.dev_type)
            && ok(&self.device, &key.device)
            && ok(&self.event, &key.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_matching() {
        let k = SeriesKey::new("c1", "mdc", "scratch", "reqs");
        assert!(TagFilter::any().matches(&k));
        assert!(TagFilter::any().dev_type("mdc").event("reqs").matches(&k));
        assert!(!TagFilter::any().dev_type("osc").matches(&k));
        assert!(!TagFilter::any().host("c2").matches(&k));
        assert!(TagFilter::any().device("scratch").matches(&k));
    }

    #[test]
    fn display_is_readable() {
        let k = SeriesKey::new("c1", "mdc", "scratch", "reqs");
        assert_eq!(k.to_string(), "mdc.scratch.reqs:c1");
    }
}
