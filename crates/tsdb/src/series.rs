//! Series keys and tag filters.
//!
//! Tag values repeat across millions of points (every series of a host
//! shares its hostname; every `mdc` series the string `mdc`), so tags
//! are interned [`Sym`]s: a key is four word-sized ids, comparisons are
//! integer compares with a string-order fallback, and constructing a
//! key for lookup allocates nothing after first sight of each tag.
//! Resolution back to text ([`Sym::as_str`]) happens at display time in
//! the portal, not in the storage engine.

use serde::{Deserialize, Serialize};
use std::fmt;
use tacc_simnode::intern::Sym;

/// The 4-tuple of tags labelling every series (§VI-A): host name, device
/// type, device name, and event name.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeriesKey {
    /// Host name, e.g. `c401-0001`.
    pub host: Sym,
    /// Device type, e.g. `mdc`.
    pub dev_type: Sym,
    /// Device (instance) name, e.g. `scratch`.
    pub device: Sym,
    /// Event name, e.g. `reqs`.
    pub event: Sym,
}

impl SeriesKey {
    /// Shorthand constructor (interns each tag).
    pub fn new(host: &str, dev_type: &str, device: &str, event: &str) -> SeriesKey {
        SeriesKey {
            host: Sym::new(host),
            dev_type: Sym::new(dev_type),
            device: Sym::new(device),
            event: Sym::new(event),
        }
    }
}

impl fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}:{}",
            self.dev_type, self.device, self.event, self.host
        )
    }
}

/// A filter over series keys: `None` on a tag means "any value"
/// (aggregate along that tag).
///
/// Builders take `&str` and intern; matching is then id equality.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TagFilter {
    /// Required host (None = all hosts).
    pub host: Option<Sym>,
    /// Required device type.
    pub dev_type: Option<Sym>,
    /// Required device name.
    pub device: Option<Sym>,
    /// Required event name.
    pub event: Option<Sym>,
}

impl TagFilter {
    /// Match every series.
    pub fn any() -> TagFilter {
        TagFilter::default()
    }

    /// Restrict to a host.
    pub fn host(mut self, h: &str) -> Self {
        self.host = Some(Sym::new(h));
        self
    }

    /// Restrict to a device type.
    pub fn dev_type(mut self, d: &str) -> Self {
        self.dev_type = Some(Sym::new(d));
        self
    }

    /// Restrict to a device name.
    pub fn device(mut self, d: &str) -> Self {
        self.device = Some(Sym::new(d));
        self
    }

    /// Restrict to an event name.
    pub fn event(mut self, e: &str) -> Self {
        self.event = Some(Sym::new(e));
        self
    }

    /// Whether `key` satisfies the filter.
    pub fn matches(&self, key: &SeriesKey) -> bool {
        fn ok(want: Option<Sym>, have: Sym) -> bool {
            want.map(|w| w == have).unwrap_or(true)
        }
        ok(self.host, key.host)
            && ok(self.dev_type, key.dev_type)
            && ok(self.device, key.device)
            && ok(self.event, key.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_matching() {
        let k = SeriesKey::new("c1", "mdc", "scratch", "reqs");
        assert!(TagFilter::any().matches(&k));
        assert!(TagFilter::any().dev_type("mdc").event("reqs").matches(&k));
        assert!(!TagFilter::any().dev_type("osc").matches(&k));
        assert!(!TagFilter::any().host("c2").matches(&k));
        assert!(TagFilter::any().device("scratch").matches(&k));
    }

    #[test]
    fn display_is_readable() {
        let k = SeriesKey::new("c1", "mdc", "scratch", "reqs");
        assert_eq!(k.to_string(), "mdc.scratch.reqs:c1");
    }

    #[test]
    fn keys_with_equal_tags_are_equal_and_order_stringwise() {
        let a = SeriesKey::new("c1", "mdc", "scratch", "reqs");
        let b = SeriesKey::new("c1", "mdc", "scratch", "reqs");
        assert_eq!(a, b);
        let c = SeriesKey::new("c1", "mdc", "scratch", "wait");
        assert!(a < c, "event 'reqs' sorts before 'wait'");
    }
}
