//! Sync primitives for the sharded store: instrumented stand-ins under
//! `--cfg loom` (so `tests/loom_shard.rs` can model the seal/read race
//! across shard locks), the vendored `parking_lot` shapes otherwise.
//! Both expose identical `read()`/`write()`/`lock()` surfaces, so the
//! store body is cfg-free — the same idiom as `tacc-broker`'s shim.

#[cfg(loom)]
pub(crate) use loom::sync::{Mutex, RwLock};
#[cfg(not(loom))]
pub(crate) use parking_lot::{Mutex, RwLock};
