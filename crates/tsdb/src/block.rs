//! Columnar block encoding for one time series.
//!
//! A series is stored as a run of immutable [`SealedBlock`]s plus a
//! small append-only head ([`SeriesBlocks`]). Each sealed block holds
//! up to [`SEAL_THRESHOLD`] points in two byte columns:
//!
//! * **Timestamp column** — first timestamp as a LEB128 varint, then
//!   the first delta as a varint, then delta-of-delta residuals as
//!   zigzag varints. Monitoring samples arrive on a fixed cadence, so
//!   the residual is almost always `0` and costs one byte per point.
//! * **Value column** — first value's IEEE-754 bits, then `bits XOR
//!   previous-bits`, each as a control byte (leading/trailing zero
//!   *byte* counts, Gorilla-style but byte-aligned) followed by the
//!   meaningful middle bytes. A repeated value costs one byte; a
//!   varying `f64` costs one byte more than its span of non-zero
//!   bytes. Byte alignment is deliberate: decode is one control byte
//!   and one unaligned load, not a bit-at-a-time (or varint
//!   byte-at-a-time) loop, which is what makes block scans competitive
//!   with raw-vector scans. The round-trip is bit-exact for every
//!   `f64` including NaN payloads.
//!
//! All arithmetic is wrapping, which makes the encoding a bijection on
//! `u64`: `delta.wrapping_sub(prev)` zigzagged and later
//! `prev.wrapping_add(residual)` invert each other for *every* input,
//! so correctness never depends on timestamps being "reasonable".
//!
//! Inserts land in the head, which is kept sorted (out-of-order
//! arrivals use a binary-search insert, matching the point-vec store
//! this module replaced: a new point sorts *after* existing points
//! with an equal timestamp). When the head reaches the seal threshold
//! it is compressed into a sealed block. A point older than the sealed
//! range — rare: only replay after a very late redelivery — is merged
//! by decoding the one overlapping block, inserting, and re-encoding
//! it; no other block is touched.
//!
//! Queries never materialize an intermediate `Vec<DataPoint>`:
//! [`SeriesBlocks::for_each_in`] streams decoded points to a closure,
//! and [`SeriesCursor`] is the pull-based equivalent for callers that
//! want to drive iteration themselves (the portal's detail reads).
//!
//! This module is on the `cargo xtask lint` deny list: no panicking
//! constructs, no unchecked indexing.

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global sealed-block id source. Ids are only ever compared
/// for equality (the shard decoded-block caches key on them), so a
/// relaxed counter is enough; `0` is reserved for never-encoded
/// (default-constructed) blocks, which caches skip.
static NEXT_BLOCK_ID: AtomicU64 = AtomicU64::new(1);

/// Number of points the mutable head accumulates before it is
/// compressed into a sealed block.
///
/// At the paper's 10-minute cadence this is ~3.5 days of one series
/// per block; small enough that the decode-merge-reencode path for a
/// late out-of-order point stays cheap, large enough that the varint
/// columns amortize their two-word header.
pub const SEAL_THRESHOLD: usize = 512;

/// Append a LEB128 varint. (Shared with the WAL/segment record codecs.)
pub(crate) fn put_varint(out: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        out.push((x as u8) | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

/// Read a LEB128 varint at `*pos`, advancing it. `None` on truncation.
pub(crate) fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    // Fast path: the steady-state timestamp byte (zero delta-of-delta
    // residual) is a single sub-0x80 byte.
    let &b0 = bytes.get(*pos)?;
    if b0 < 0x80 {
        *pos += 1;
        return Some(u64::from(b0));
    }
    let mut x: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        x |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return Some(x);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Encoded length of a value word in the byte-aligned XOR scheme:
/// one control byte plus the meaningful middle bytes. (Encoding now
/// writes through reusable scratch, so sizing is only asserted in
/// tests.)
#[cfg(test)]
fn xor_len(x: u64) -> usize {
    if x == 0 {
        return 1;
    }
    let lead = (x.leading_zeros() / 8) as usize;
    let trail = (x.trailing_zeros() / 8) as usize;
    1 + 8 - lead - trail
}

/// Append a value word: control byte `(leading-zero-bytes << 4) |
/// trailing-zero-bytes`, then the middle bytes little-endian. Zero is
/// the single byte `0x80` (8 leading zero bytes, nothing else).
fn put_xor(out: &mut Vec<u8>, x: u64) {
    if x == 0 {
        out.push(0x80);
        return;
    }
    let lead = (x.leading_zeros() / 8) as usize;
    let trail = (x.trailing_zeros() / 8) as usize;
    let mid = 8 - lead - trail;
    out.push(((lead as u8) << 4) | trail as u8);
    let le = (x >> (8 * trail)).to_le_bytes();
    out.extend_from_slice(le.get(..mid).unwrap_or(&[]));
}

/// Number of zero bytes appended after the last value word, so
/// [`get_xor`] can always load a full eight-byte window instead of a
/// byte-at-a-time loop. (`XOR_PAD` >= 8: a zero word consumes only its
/// control byte, leaving the window one byte short of `mid`'s maximum.)
pub(crate) const XOR_PAD: usize = 8;

/// Read a value word at `*pos`, advancing it. The column must carry
/// [`XOR_PAD`] trailing zero bytes (encode always pads): the decoder
/// loads a full eight-byte window unconditionally and masks it down to
/// the meaningful bytes, so decode is one load, one mask, one shift —
/// no per-byte loop. `None` on truncation or a corrupt control byte.
fn get_xor(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let &c = bytes.get(*pos)?;
    let chunk = bytes.get(*pos + 1..*pos + 9)?;
    let le: [u8; 8] = chunk.try_into().ok()?;
    let lead = usize::from(c >> 4);
    let trail = usize::from(c & 0x0F);
    let mid = 8usize.checked_sub(lead + trail)?;
    *pos += 1 + mid;
    let w = u64::from_le_bytes(le);
    let w = if mid == 8 {
        w
    } else {
        w & ((1u64 << (8 * mid)) - 1)
    };
    // checked_shl guards the corrupt-control case (trail == 8 with
    // mid == 0); the payload is zero there anyway.
    Some(w.checked_shl(8 * trail as u32).unwrap_or(0))
}

/// Zigzag-fold a signed residual into an unsigned varint payload.
fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

/// Unfold [`zigzag`].
fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// Reusable seal-time encode buffers. The encoder streams both columns
/// into these (amortized: they grow once and are reused for every
/// subsequent seal), then copies them into one exact-size allocation
/// per block — so steady-state sealing costs a single allocation.
#[derive(Clone, Debug, Default)]
pub struct SealScratch {
    /// Timestamp column staging buffer.
    ts: Vec<u8>,
    /// Value column staging buffer.
    vs: Vec<u8>,
}

/// An immutable compressed run of points, sorted by timestamp.
#[derive(Clone, Debug, Default)]
pub struct SealedBlock {
    /// Number of points in the block.
    count: usize,
    /// Timestamp of the first point.
    min_t: u64,
    /// Timestamp of the last point.
    max_t: u64,
    /// Byte offset where the value column starts inside `cols`.
    ts_len: usize,
    /// Both columns in one exact-size buffer: the delta-of-delta
    /// zigzag-varint timestamp column, then the XOR-previous
    /// byte-aligned value column (with its [`XOR_PAD`] tail).
    cols: Vec<u8>,
    /// Process-unique id (see [`NEXT_BLOCK_ID`]); `0` only on
    /// default-constructed, never-encoded blocks.
    id: u64,
}

impl SealedBlock {
    /// Compress parallel timestamp/value columns (timestamps must be
    /// sorted; the encoder trusts but never *requires* this — decoding
    /// reproduces the input order bit-exactly either way). Allocates a
    /// throwaway [`SealScratch`]; hot paths that seal repeatedly should
    /// call [`SealedBlock::encode_with_scratch`] instead.
    pub fn encode(ts: &[u64], vs: &[f64]) -> SealedBlock {
        let mut scratch = SealScratch::default();
        Self::encode_with_scratch(ts, vs, &mut scratch)
    }

    /// Like [`SealedBlock::encode`], but staging both columns through
    /// the caller's reusable scratch so the only allocation left in a
    /// steady-state seal is the block's own exact-size column buffer.
    pub fn encode_with_scratch(ts: &[u64], vs: &[f64], scratch: &mut SealScratch) -> SealedBlock {
        let count = ts.len().min(vs.len());
        scratch.ts.clear();
        scratch.vs.clear();
        let mut prev_t = 0u64;
        let mut prev_delta = 0u64;
        let mut prev_bits = 0u64;
        for (i, (&t, &v)) in ts.iter().zip(vs.iter()).enumerate() {
            let (tw, vw) = Self::column_words(i, t, v, prev_t, prev_delta, prev_bits);
            put_varint(&mut scratch.ts, tw);
            put_xor(&mut scratch.vs, vw);
            prev_delta = t.wrapping_sub(prev_t);
            prev_t = t;
            prev_bits = v.to_bits();
        }
        let ts_len = scratch.ts.len();
        // alloc: cold (seal builds the block's owned storage, once per ~block of points)
        let mut cols = Vec::with_capacity(ts_len + scratch.vs.len() + XOR_PAD);
        cols.extend_from_slice(&scratch.ts);
        cols.extend_from_slice(&scratch.vs);
        // Padding window for the decoder's unconditional 8-byte loads.
        cols.extend_from_slice(&[0u8; XOR_PAD]);
        SealedBlock {
            count,
            min_t: ts.first().copied().unwrap_or(0),
            max_t: ts.last().copied().unwrap_or(0),
            ts_len,
            cols,
            id: NEXT_BLOCK_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The timestamp column bytes (shared with the segment codec).
    pub(crate) fn ts_col(&self) -> &[u8] {
        self.cols.get(..self.ts_len).unwrap_or(&[])
    }

    /// The value column bytes, including the pad tail (shared with the
    /// segment codec).
    pub(crate) fn vs_col(&self) -> &[u8] {
        self.cols.get(self.ts_len..).unwrap_or(&[])
    }

    /// Reassemble a block from persisted parts: the metadata words and
    /// the two column byte runs (`vs` must include its [`XOR_PAD`]
    /// tail, exactly as [`SealedBlock::ts_col`]/[`SealedBlock::vs_col`]
    /// expose them). One exact-size allocation; the block gets a fresh
    /// process-unique id, so decoded-block caches never confuse it
    /// with a pre-crash incarnation.
    pub(crate) fn from_parts(
        count: usize,
        min_t: u64,
        max_t: u64,
        ts: &[u8],
        vs: &[u8],
    ) -> SealedBlock {
        // alloc: cold (block reconstruction from replayed columns, recovery-time only)
        let mut cols = Vec::with_capacity(ts.len() + vs.len());
        cols.extend_from_slice(ts);
        cols.extend_from_slice(vs);
        SealedBlock {
            count,
            min_t,
            max_t,
            ts_len: ts.len(),
            cols,
            id: NEXT_BLOCK_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Process-unique identity of this encoded block, used as the
    /// decoded-block cache key. Re-encoding (the out-of-order merge
    /// path) produces a *new* id, so caches never serve stale bytes.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The column payloads of point `i`: raw timestamp / first delta /
    /// zigzagged delta-of-delta residual (varint-encoded), and raw
    /// bits / XOR-previous bits (byte-aligned XOR encoding). Shared by
    /// the sizing and writing passes of [`SealedBlock::encode`].
    #[inline]
    fn column_words(
        i: usize,
        t: u64,
        v: f64,
        prev_t: u64,
        prev_delta: u64,
        prev_bits: u64,
    ) -> (u64, u64) {
        match i {
            0 => (t, v.to_bits()),
            1 => (t.wrapping_sub(prev_t), v.to_bits() ^ prev_bits),
            _ => {
                let delta = t.wrapping_sub(prev_t);
                (
                    zigzag(delta.wrapping_sub(prev_delta) as i64),
                    v.to_bits() ^ prev_bits,
                )
            }
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the block holds no points.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Timestamp of the first point (0 for an empty block).
    pub fn min_t(&self) -> u64 {
        self.min_t
    }

    /// Timestamp of the last point (0 for an empty block).
    pub fn max_t(&self) -> u64 {
        self.max_t
    }

    /// Encoded size in bytes of both columns.
    pub fn encoded_bytes(&self) -> usize {
        self.cols.len()
    }

    /// A streaming decoder positioned at the first point.
    pub fn cursor(&self) -> BlockCursor<'_> {
        BlockCursor {
            ts: self.ts_col(),
            vs: self.vs_col(),
            ts_pos: 0,
            vs_pos: 0,
            emitted: 0,
            count: self.count,
            prev_t: 0,
            prev_delta: 0,
            prev_bits: 0,
        }
    }

    /// Decode every point into the given columns (append).
    pub fn decode_into(&self, ts: &mut Vec<u64>, vs: &mut Vec<f64>) {
        ts.reserve(self.count);
        vs.reserve(self.count);
        let mut cur = self.cursor();
        while let Some((t, v)) = cur.next_point() {
            ts.push(t);
            vs.push(v);
        }
    }

    /// Decode into caller-provided columns (each at least `len()`
    /// long); returns the number of points written. Decodes each
    /// column in its own tight loop — the batch path scans use so the
    /// varint state machine never interleaves with caller work.
    pub fn decode_to_slices(&self, ts: &mut [u64], vs: &mut [f64]) -> usize {
        let n = self.count.min(ts.len()).min(vs.len());
        let ts_col = self.ts_col();
        let vs_col = self.vs_col();
        // Timestamp column: the first two points carry the raw start
        // and first delta; handling them before the loop keeps the
        // steady-state body branch-free (one varint, two adds, one
        // store per point).
        let mut pos = 0usize;
        let mut prev_t = 0u64;
        let mut prev_delta = 0u64;
        let mut decoded = 0usize;
        for (i, slot) in ts.iter_mut().take(n).enumerate().take(2) {
            let Some(w) = get_varint(ts_col, &mut pos) else {
                return decoded;
            };
            if i == 1 {
                prev_delta = w;
                prev_t = prev_t.wrapping_add(w);
            } else {
                prev_t = w;
            }
            *slot = prev_t;
            decoded = i + 1;
        }
        for slot in ts.iter_mut().take(n).skip(2) {
            let Some(w) = get_varint(ts_col, &mut pos) else {
                return decoded;
            };
            prev_delta = prev_delta.wrapping_add(unzigzag(w) as u64);
            prev_t = prev_t.wrapping_add(prev_delta);
            *slot = prev_t;
            decoded += 1;
        }
        // Value column, same shape: seed the XOR chain, then a
        // branch-free body (one load, one xor, one store per point).
        pos = 0;
        let mut prev_bits = 0u64;
        decoded = 0;
        if let Some(slot) = vs.first_mut().filter(|_| n > 0) {
            let Some(x) = get_xor(vs_col, &mut pos) else {
                return 0;
            };
            prev_bits = x;
            *slot = f64::from_bits(x);
            decoded = 1;
        }
        for slot in vs.iter_mut().take(n).skip(1) {
            let Some(x) = get_xor(vs_col, &mut pos) else {
                return decoded;
            };
            prev_bits ^= x;
            *slot = f64::from_bits(prev_bits);
            decoded += 1;
        }
        n
    }
}

/// Streaming decoder over one [`SealedBlock`].
///
/// Borrows the block's columns; decoding state is a few machine words,
/// so skipping to a range start is a cheap decode-and-discard.
#[derive(Clone, Debug)]
pub struct BlockCursor<'a> {
    ts: &'a [u8],
    vs: &'a [u8],
    ts_pos: usize,
    vs_pos: usize,
    emitted: usize,
    count: usize,
    prev_t: u64,
    prev_delta: u64,
    prev_bits: u64,
}

impl<'a> BlockCursor<'a> {
    /// A cursor directly over borrowed column bytes — the zero-copy
    /// entry point the segment scanner uses to stream a persisted
    /// block without first materializing a [`SealedBlock`]. `vs` must
    /// carry its [`XOR_PAD`] tail (persisted columns always do).
    pub fn over_columns(ts: &'a [u8], vs: &'a [u8], count: usize) -> BlockCursor<'a> {
        BlockCursor {
            ts,
            vs,
            ts_pos: 0,
            vs_pos: 0,
            emitted: 0,
            count,
            prev_t: 0,
            prev_delta: 0,
            prev_bits: 0,
        }
    }
}

impl BlockCursor<'_> {
    /// Decode the next point, or `None` at end of block. (A corrupt —
    /// truncated — column also ends iteration; sealed columns are only
    /// ever produced by [`SealedBlock::encode`], so in practice this
    /// path is unreachable.)
    pub fn next_point(&mut self) -> Option<(u64, f64)> {
        if self.emitted >= self.count {
            return None;
        }
        let t = match self.emitted {
            0 => get_varint(self.ts, &mut self.ts_pos)?,
            1 => {
                self.prev_delta = get_varint(self.ts, &mut self.ts_pos)?;
                self.prev_t.wrapping_add(self.prev_delta)
            }
            _ => {
                let dod = unzigzag(get_varint(self.ts, &mut self.ts_pos)?);
                self.prev_delta = self.prev_delta.wrapping_add(dod as u64);
                self.prev_t.wrapping_add(self.prev_delta)
            }
        };
        let xored = get_xor(self.vs, &mut self.vs_pos)?;
        let bits = if self.emitted == 0 {
            xored
        } else {
            self.prev_bits ^ xored
        };
        self.prev_t = t;
        self.prev_bits = bits;
        self.emitted += 1;
        Some((t, f64::from_bits(bits)))
    }
}

impl Iterator for BlockCursor<'_> {
    type Item = (u64, f64);

    fn next(&mut self) -> Option<(u64, f64)> {
        self.next_point()
    }
}

/// One series' storage: sealed blocks plus the sorted mutable head.
///
/// Invariant: sealed blocks are ordered (`block[i].max_t <=
/// block[i+1].min_t` — equal only when duplicate timestamps straddle a
/// seal boundary) and every head timestamp is `>=` the last sealed
/// block's `max_t`.
#[derive(Clone, Debug, Default)]
pub struct SeriesBlocks {
    sealed: Vec<SealedBlock>,
    sealed_points: usize,
    head_t: Vec<u64>,
    head_v: Vec<f64>,
}

impl SeriesBlocks {
    /// New empty series.
    pub fn new() -> SeriesBlocks {
        SeriesBlocks::default()
    }

    /// Total points across sealed blocks and the head.
    pub fn len(&self) -> usize {
        self.sealed_points + self.head_t.len()
    }

    /// True when the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sealed blocks.
    pub fn n_sealed(&self) -> usize {
        self.sealed.len()
    }

    /// Points living in sealed blocks (the rest are in the head).
    pub fn sealed_len(&self) -> usize {
        self.sealed_points
    }

    /// Encoded bytes across sealed blocks (head excluded).
    pub fn sealed_bytes(&self) -> usize {
        self.sealed.iter().map(SealedBlock::encoded_bytes).sum()
    }

    /// Timestamp of the earliest stored point, from block metadata —
    /// no decoding.
    pub fn min_t(&self) -> Option<u64> {
        self.sealed
            .first()
            .map(SealedBlock::min_t)
            .or_else(|| self.head_t.first().copied())
    }

    /// Timestamp of the latest stored point, from block metadata — no
    /// decoding.
    pub fn max_t(&self) -> Option<u64> {
        self.head_t
            .last()
            .copied()
            .or_else(|| self.sealed.last().map(SealedBlock::max_t))
    }

    /// Timestamp after which the head begins: points `>=` this belong
    /// in the head, older ones inside a sealed block.
    fn sealed_max(&self) -> Option<u64> {
        self.sealed.last().map(SealedBlock::max_t)
    }

    /// Insert one point, preserving timestamp order. A duplicate
    /// timestamp sorts after the existing equal points, matching the
    /// point-vec store's `partition_point(|p| p.t <= t)` semantics.
    /// Allocates a throwaway [`SealScratch`] on the (1-in-512) push
    /// that seals; bulk ingest paths should thread a reusable scratch
    /// through [`SeriesBlocks::push_with_scratch`] instead.
    pub fn push(&mut self, t: u64, v: f64) {
        let mut scratch = SealScratch::default();
        self.push_with_scratch(t, v, &mut scratch);
    }

    /// Like [`SeriesBlocks::push`], but sealing (when the head fills)
    /// encodes through the caller's reusable scratch, so steady-state
    /// ingest performs one allocation per sealed block and none per
    /// point. Returns `true` when this push sealed the head into a new
    /// block (the durability layer persists exactly those pushes).
    pub fn push_with_scratch(&mut self, t: u64, v: f64, scratch: &mut SealScratch) -> bool {
        self.insert_point(t, v);
        if self.head_t.len() >= SEAL_THRESHOLD {
            self.seal_head(scratch);
            return true;
        }
        false
    }

    /// Insert without ever sealing — the WAL-replay path, where seals
    /// are dictated by the log's seal markers rather than the head
    /// length (a replayed head may legitimately exceed the threshold
    /// when the crash ate a seal marker; the next live push seals it).
    pub(crate) fn push_unsealed(&mut self, t: u64, v: f64) {
        self.insert_point(t, v);
    }

    /// The shared insert body: merge into the sealed range for a late
    /// point, sorted head insert otherwise.
    fn insert_point(&mut self, t: u64, v: f64) {
        match self.sealed_max() {
            Some(smax) if t < smax => self.merge_into_sealed(t, v),
            _ => {
                // First point of a (re)filled head: size both columns
                // for a full block up front, so the head never
                // reallocates on its way to the seal threshold.
                if self.head_t.capacity() == 0 {
                    self.head_t.reserve_exact(SEAL_THRESHOLD);
                    self.head_v.reserve_exact(SEAL_THRESHOLD);
                }
                match self.head_t.last() {
                    Some(&last) if last > t => {
                        let idx = self.head_t.partition_point(|&ht| ht <= t);
                        self.head_t.insert(idx, t);
                        self.head_v.insert(idx, v);
                    }
                    _ => {
                        self.head_t.push(t);
                        self.head_v.push(v);
                    }
                }
            }
        }
    }

    /// Append an already-sealed block (recovery installing a persisted
    /// block) and drop the replayed head points it covers. Returns the
    /// number of head points consumed.
    pub(crate) fn install_sealed(&mut self, block: SealedBlock) -> usize {
        let consumed = self.head_t.len();
        self.head_t.clear();
        self.head_v.clear();
        self.sealed_points += block.len();
        self.sealed.push(block);
        consumed
    }

    /// Compress the head into a sealed block and clear it.
    fn seal_head(&mut self, scratch: &mut SealScratch) {
        if self.head_t.is_empty() {
            return;
        }
        let block = SealedBlock::encode_with_scratch(&self.head_t, &self.head_v, scratch);
        self.sealed_points += block.len();
        self.sealed.push(block);
        self.head_t.clear();
        self.head_v.clear();
    }

    /// The sealed blocks, oldest first (shared with the shard layer's
    /// decoded-block cache).
    pub fn sealed(&self) -> &[SealedBlock] {
        &self.sealed
    }

    /// The mutable head's parallel timestamp/value columns.
    pub fn head_cols(&self) -> (&[u64], &[f64]) {
        (&self.head_t, &self.head_v)
    }

    /// Out-of-order insert into the sealed range: decode the one
    /// overlapping block, insert, re-encode. Bounded by the seal
    /// threshold, and only late redeliveries ever take this path.
    fn merge_into_sealed(&mut self, t: u64, v: f64) {
        // Last block whose min_t <= t; points between two blocks'
        // ranges append to the earlier one. `idx` is in-bounds: this
        // path only runs when t < sealed max, so at least one block
        // exists, and saturating_sub pins the "before every block"
        // case to block 0.
        let idx = self
            .sealed
            .partition_point(|b| b.min_t() <= t)
            .saturating_sub(1);
        // alloc: cold (out-of-order merge path, rare by construction; in-order appends never decode)
        let mut ts: Vec<u64> = Vec::new();
        // alloc: cold (out-of-order merge path, see above)
        let mut vs: Vec<f64> = Vec::new();
        if let Some(block) = self.sealed.get(idx) {
            block.decode_into(&mut ts, &mut vs);
        }
        let at = ts.partition_point(|&bt| bt <= t);
        ts.insert(at, t);
        vs.insert(at, v);
        let reencoded = SealedBlock::encode(&ts, &vs);
        if let Some(slot) = self.sealed.get_mut(idx) {
            *slot = reencoded;
            self.sealed_points += 1;
        }
    }

    /// Stream every point with `t0 <= t < t1` to `f`, in timestamp
    /// order, without materializing an intermediate vector.
    pub fn for_each_in(&self, t0: u64, t1: u64, mut f: impl FnMut(u64, f64)) {
        if t1 <= t0 {
            return;
        }
        // Batch buffers: a whole block decodes into these stack
        // columns, then the in-range subslice streams to `f`.
        let mut ts_buf = [0u64; SEAL_THRESHOLD];
        let mut vs_buf = [0f64; SEAL_THRESHOLD];
        for block in &self.sealed {
            if block.max_t() < t0 {
                continue;
            }
            if block.min_t() >= t1 {
                break;
            }
            if block.len() <= SEAL_THRESHOLD {
                let n = block.decode_to_slices(&mut ts_buf, &mut vs_buf);
                let dec_t = ts_buf.get(..n).unwrap_or(&[]);
                let dec_v = vs_buf.get(..n).unwrap_or(&[]);
                let lo = dec_t.partition_point(|&t| t < t0);
                let hi = dec_t.partition_point(|&t| t < t1);
                let m = hi.saturating_sub(lo);
                for (&t, &v) in dec_t.iter().skip(lo).zip(dec_v.iter().skip(lo)).take(m) {
                    f(t, v);
                }
            } else {
                // Out-of-order merges can grow a block past the seal
                // threshold; stream those through the cursor instead.
                let mut cur = block.cursor();
                while let Some((t, v)) = cur.next_point() {
                    if t >= t1 {
                        break;
                    }
                    if t >= t0 {
                        f(t, v);
                    }
                }
            }
        }
        let lo = self.head_t.partition_point(|&t| t < t0);
        let hi = self.head_t.partition_point(|&t| t < t1);
        let n = hi.saturating_sub(lo);
        for (&t, &v) in self
            .head_t
            .iter()
            .skip(lo)
            .zip(self.head_v.iter().skip(lo))
            .take(n)
        {
            f(t, v);
        }
    }

    /// Stream every stored point to `f`, in timestamp order.
    pub fn for_each(&self, mut f: impl FnMut(u64, f64)) {
        for block in &self.sealed {
            let mut cur = block.cursor();
            while let Some((t, v)) = cur.next_point() {
                f(t, v);
            }
        }
        for (&t, &v) in self.head_t.iter().zip(self.head_v.iter()) {
            f(t, v);
        }
    }

    /// A pull-based cursor over `[t0, t1)`, positioned at the first
    /// in-range point. Borrows the series storage.
    pub fn cursor_in(&self, t0: u64, t1: u64) -> SeriesCursor<'_> {
        let lo = self.head_t.partition_point(|&t| t < t0);
        let head_t = self.head_t.get(lo..).unwrap_or(&[]);
        let head_v = self.head_v.get(lo..).unwrap_or(&[]);
        SeriesCursor {
            blocks: self.sealed.iter(),
            current: None,
            head: head_t.iter().zip(head_v.iter()),
            t0,
            t1,
        }
    }
}

/// Pull-based borrowing cursor over one series range — the storage-side
/// half of `TsDb`'s cursor API. Decodes sealed blocks incrementally and
/// then walks the head; never allocates.
pub struct SeriesCursor<'a> {
    blocks: std::slice::Iter<'a, SealedBlock>,
    current: Option<BlockCursor<'a>>,
    head: std::iter::Zip<std::slice::Iter<'a, u64>, std::slice::Iter<'a, f64>>,
    t0: u64,
    t1: u64,
}

impl SeriesCursor<'_> {
    /// The next in-range point, or `None` when the range is exhausted.
    pub fn next_point(&mut self) -> Option<(u64, f64)> {
        if self.t1 <= self.t0 {
            return None;
        }
        loop {
            if let Some(cur) = self.current.as_mut() {
                for (t, v) in cur.by_ref() {
                    if t >= self.t1 {
                        break;
                    }
                    if t >= self.t0 {
                        return Some((t, v));
                    }
                }
                self.current = None;
            }
            match self.blocks.next() {
                Some(block) if block.max_t() < self.t0 => continue,
                Some(block) if block.min_t() >= self.t1 => {
                    // Sealed range is past t1; drain the remaining
                    // blocks so only the head is left to consider.
                    for _ in self.blocks.by_ref() {}
                }
                Some(block) => {
                    self.current = Some(block.cursor());
                    continue;
                }
                None => {}
            }
            // Head: already positioned at the first point >= t0.
            if let Some((&t, &v)) = self.head.next() {
                if t < self.t1 {
                    return Some((t, v));
                }
            }
            return None;
        }
    }
}

impl Iterator for SeriesCursor<'_> {
    type Item = (u64, f64);

    fn next(&mut self) -> Option<(u64, f64)> {
        self.next_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference model: the point-vec store this module replaced.
    fn reference_insert(pts: &mut Vec<(u64, f64)>, t: u64, v: f64) {
        match pts.last() {
            Some(last) if last.0 > t => {
                let idx = pts.partition_point(|p| p.0 <= t);
                pts.insert(idx, (t, v));
            }
            _ => pts.push((t, v)),
        }
    }

    fn collect_all(s: &SeriesBlocks) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        s.for_each(|t, v| out.push((t, v)));
        out
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let samples = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &x in &samples {
            buf.clear();
            put_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(x));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for x in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(x)), x);
        }
    }

    #[test]
    fn xor_words_round_trip() {
        let samples = [
            0u64,
            1,
            0xFF,
            0x100,
            0xAB00,
            0xAB_0000_0000,    // leading and trailing zero bytes
            42.0f64.to_bits(), // real f64 bit pattern
            f64::NAN.to_bits(),
            u64::MAX,
            1 << 63,
        ];
        let mut buf = Vec::new();
        for &x in &samples {
            buf.clear();
            put_xor(&mut buf, x);
            assert_eq!(buf.len(), xor_len(x), "sizing must match for {x:#x}");
            let word_len = buf.len();
            buf.extend_from_slice(&[0u8; XOR_PAD]); // decoder's load window
            let mut pos = 0;
            assert_eq!(get_xor(&buf, &mut pos), Some(x));
            assert_eq!(pos, word_len);
        }
        // Repeated-value steady state is one byte.
        let mut buf = Vec::new();
        put_xor(&mut buf, 0);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn encode_decode_identity() {
        let ts: Vec<u64> = (0..100).map(|i| 600 * i).collect();
        let vs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 1e6).collect();
        let block = SealedBlock::encode(&ts, &vs);
        assert_eq!(block.len(), 100);
        assert_eq!(block.min_t(), 0);
        assert_eq!(block.max_t(), 600 * 99);
        let (mut dt, mut dv) = (Vec::new(), Vec::new());
        block.decode_into(&mut dt, &mut dv);
        assert_eq!(dt, ts);
        assert_eq!(dv, vs);
    }

    #[test]
    fn fixed_cadence_is_about_a_byte_per_timestamp() {
        // 10-minute cadence, constant value: the steady-state cost is
        // one byte per point in each column.
        let ts: Vec<u64> = (0..512).map(|i| 1_450_000_000 + 600 * i).collect();
        let vs = vec![42.0f64; 512];
        let block = SealedBlock::encode(&ts, &vs);
        assert!(
            block.encoded_bytes() < 512 + 512 + 32,
            "encoded {} bytes",
            block.encoded_bytes()
        );
    }

    #[test]
    fn seal_threshold_rolls_blocks() {
        let mut s = SeriesBlocks::new();
        for i in 0..(SEAL_THRESHOLD as u64 * 2 + 10) {
            s.push(i * 600, i as f64);
        }
        assert_eq!(s.n_sealed(), 2);
        assert_eq!(s.len(), SEAL_THRESHOLD * 2 + 10);
        let all = collect_all(&s);
        assert_eq!(all.len(), s.len());
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn out_of_order_merges_into_sealed_block() {
        let mut s = SeriesBlocks::new();
        for i in 0..(SEAL_THRESHOLD as u64 + 4) {
            s.push(i * 10, i as f64);
        }
        assert_eq!(s.n_sealed(), 1);
        s.push(55, -1.0); // strictly inside the sealed range
        let all = collect_all(&s);
        assert_eq!(all.len(), SEAL_THRESHOLD + 5);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(all.contains(&(55, -1.0)));
    }

    #[test]
    fn range_respects_half_open_bounds() {
        let mut s = SeriesBlocks::new();
        for t in [100u64, 200, 300, 400] {
            s.push(t, t as f64);
        }
        let mut got = Vec::new();
        s.for_each_in(200, 400, |t, _| got.push(t));
        assert_eq!(got, vec![200, 300]);
        let cur: Vec<u64> = s.cursor_in(200, 400).map(|(t, _)| t).collect();
        assert_eq!(cur, vec![200, 300]);
    }

    #[test]
    fn empty_and_inverted_ranges_yield_nothing() {
        let mut s = SeriesBlocks::new();
        s.push(10, 1.0);
        let mut n = 0;
        s.for_each_in(5, 5, |_, _| n += 1);
        s.for_each_in(20, 10, |_, _| n += 1);
        assert_eq!(n, 0);
        assert_eq!(s.cursor_in(20, 10).count(), 0);
        assert_eq!(SeriesBlocks::new().cursor_in(0, 100).count(), 0);
    }

    proptest! {
        /// Round-trip: arbitrary insert sequences (out-of-order and
        /// duplicate timestamps included) produce exactly the point
        /// sequence the point-vec reference produces.
        #[test]
        fn insert_sequences_match_point_vec_reference(
            pts in proptest::collection::vec((0u64..5000, -1e12f64..1e12), 0..900)
        ) {
            let mut s = SeriesBlocks::new();
            let mut reference: Vec<(u64, f64)> = Vec::new();
            for &(t, v) in &pts {
                s.push(t, v);
                reference_insert(&mut reference, t, v);
            }
            prop_assert_eq!(s.len(), reference.len());
            prop_assert_eq!(collect_all(&s), reference.clone());

            // Sub-range queries agree with the reference slice, via
            // both the streaming and the cursor API.
            for (t0, t1) in [(0u64, 5000u64), (100, 3000), (2500, 2500), (4000, 100)] {
                let want: Vec<(u64, f64)> = reference
                    .iter()
                    .filter(|p| p.0 >= t0 && p.0 < t1)
                    .copied()
                    .collect();
                let mut got = Vec::new();
                s.for_each_in(t0, t1, |t, v| got.push((t, v)));
                prop_assert_eq!(&got, &want);
                let cur: Vec<(u64, f64)> = s.cursor_in(t0, t1).collect();
                prop_assert_eq!(&cur, &want);
            }
        }

        /// Block encode/decode is the identity on sorted columns,
        /// bit-exact for values.
        #[test]
        fn encode_decode_round_trips(
            mut ts in proptest::collection::vec(any::<u64>(), 0..600),
            vs in proptest::collection::vec(proptest::num::f64::ANY, 0..600)
        ) {
            ts.sort_unstable();
            let n = ts.len().min(vs.len());
            ts.truncate(n);
            let vs = &vs[..n];
            let block = SealedBlock::encode(&ts, vs);
            let (mut dt, mut dv) = (Vec::new(), Vec::new());
            block.decode_into(&mut dt, &mut dv);
            prop_assert_eq!(dt, ts);
            // Compare bit patterns so NaN payloads count as equal.
            let got: Vec<u64> = dv.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = vs.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got, want);
        }
    }
}
