//! Virtual disk under the durability layer.
//!
//! Everything the WAL and segment writers do to stable storage goes
//! through two object-safe traits — [`DurFile`] (an append-only byte
//! device with an explicit durable watermark) and [`Vfs`] (a flat
//! namespace of such files) — so the same durability code runs against
//! two backends:
//!
//! * [`FsVfs`] — real files in a directory via `std::fs`, for actual
//!   durable deployments and the on-disk benches.
//! * [`MemVfs`] — a deterministic in-memory disk that tracks, per
//!   file, which prefix has been fsynced, consults a
//!   [`DiskFaultPlan`] for injected short writes / fsync failures /
//!   kill-at-offset, and can produce *crash images*: the byte state a
//!   real disk could legally present after a crash (synced bytes
//!   always survive; unsynced bytes survive partially or not at all).
//!
//! The fault model is the contract the recovery proofs lean on: a
//! kill at byte offset `K` persists exactly the first `K` appended
//! bytes (the straddling append is torn mid-record), and a crash with
//! dropped page cache keeps each file's synced prefix plus an
//! arbitrary prefix of its unsynced tail. Chaos tests sweep both.
//!
//! This module is on the `cargo xtask lint` deny list: no panicking
//! constructs, no unchecked indexing.

use crate::sync::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::PathBuf;
use std::sync::Arc;
use tacc_simnode::faults::DiskFaultPlan;

/// Why a durable-storage operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiskError {
    /// The (simulated) process is dead: nothing works any more.
    Killed,
    /// An append persisted only a prefix of its buffer.
    ShortWrite {
        /// Bytes that did reach the file before the failure.
        wrote: usize,
    },
    /// fsync failed; the durable watermark did not advance.
    SyncFailed,
    /// The stored bytes failed validation during recovery.
    Corrupt(&'static str),
    /// Underlying operating-system error.
    Io(String),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Killed => write!(f, "process killed by fault plan"),
            DiskError::ShortWrite { wrote } => write!(f, "short write ({wrote} bytes persisted)"),
            DiskError::SyncFailed => write!(f, "fsync failed"),
            DiskError::Corrupt(what) => write!(f, "corrupt stored data: {what}"),
            DiskError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DiskError {}

/// An append-only byte device with an explicit durability watermark.
///
/// `append` may fail after persisting a prefix (the torn-record case);
/// callers that need record atomicity must [`DurFile::truncate`] back
/// to the last record boundary they know to be whole. `sync` makes
/// everything appended so far durable.
pub trait DurFile: Send + Sync {
    /// Append `buf`; on failure a prefix may have been persisted.
    fn append(&mut self, buf: &[u8]) -> Result<(), DiskError>;
    /// Make every appended byte durable.
    fn sync(&mut self) -> Result<(), DiskError>;
    /// Cut the file back to `len` bytes (used to drop a torn tail
    /// before re-appending).
    fn truncate(&mut self, len: u64) -> Result<(), DiskError>;
    /// Current file length in bytes.
    fn len(&self) -> u64;
    /// True when the file holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A flat namespace of [`DurFile`]s plus whole-file reads — everything
/// recovery and the writers need, small enough that a deterministic
/// in-memory model ([`MemVfs`]) implements it exactly.
pub trait Vfs: Send + Sync {
    /// Open `name` for appending, creating it if missing, first
    /// truncating it to `keep` bytes (recovery passes the length of
    /// the valid prefix so a torn tail never precedes fresh records).
    fn open_append(&self, name: &str, keep: u64) -> Result<Box<dyn DurFile>, DiskError>;
    /// Read the whole file, or `None` when it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DiskError>;
    /// Delete a file (succeeds when it is already gone).
    fn remove(&self, name: &str) -> Result<(), DiskError>;
    /// Names of every file, sorted.
    fn list(&self) -> Result<Vec<String>, DiskError>;
}

// ---------------------------------------------------------------------
// In-memory fault-injectable disk
// ---------------------------------------------------------------------

/// One in-memory file: its bytes and how much of them is fsynced.
#[derive(Clone, Debug, Default)]
struct MemFileData {
    bytes: Vec<u8>,
    synced: usize,
}

/// Shared state of a [`MemVfs`] disk.
#[derive(Debug, Default)]
struct MemDiskState {
    files: BTreeMap<String, MemFileData>,
    plan: DiskFaultPlan,
    /// Bytes absorbed across every append on the disk.
    appended_total: u64,
    /// Append operations attempted (short-write ordinals index this).
    appends: u64,
    /// Sync operations attempted (sync-failure ordinals index this).
    syncs: u64,
    /// Set once the kill offset has been crossed.
    killed: bool,
}

/// Observability counters of a [`MemVfs`] disk, for test assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemDiskStats {
    /// Bytes absorbed across every append.
    pub appended_bytes: u64,
    /// Append operations attempted.
    pub appends: u64,
    /// Sync operations attempted.
    pub syncs: u64,
    /// True once the kill offset has been crossed.
    pub killed: bool,
}

/// Deterministic in-memory disk with fault injection (see module docs).
#[derive(Clone, Default)]
pub struct MemVfs {
    state: Arc<Mutex<MemDiskState>>,
}

impl MemVfs {
    /// A fresh, fault-free disk.
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    /// A fresh disk that consults `plan` on every operation.
    // alloc: cold-fn (disk construction, test/sim harness setup)
    pub fn with_faults(plan: DiskFaultPlan) -> MemVfs {
        MemVfs {
            state: Arc::new(Mutex::new(MemDiskState {
                plan,
                ..MemDiskState::default()
            })),
        }
    }

    /// Current disk counters.
    pub fn stats(&self) -> MemDiskStats {
        let s = self.state.lock();
        MemDiskStats {
            appended_bytes: s.appended_total,
            appends: s.appends,
            syncs: s.syncs,
            killed: s.killed,
        }
    }

    /// The crash image after a kill: every *persisted* byte survives
    /// (the kill already stopped persistence at the fault offset).
    /// Returns a fresh fault-free disk holding the image, as a new
    /// process would see it at boot.
    // alloc: cold-fn (fault-injection snapshot for chaos tests, never on the write path)
    pub fn crash_image(&self) -> MemVfs {
        let s = self.state.lock();
        let files = s
            .files
            .iter()
            .map(|(name, f)| {
                (
                    name.clone(),
                    MemFileData {
                        bytes: f.bytes.clone(),
                        synced: f.bytes.len(),
                    },
                )
            })
            .collect();
        MemVfs {
            state: Arc::new(Mutex::new(MemDiskState {
                files,
                ..MemDiskState::default()
            })),
        }
    }

    /// The crash image after a power loss that drops the page cache:
    /// each file keeps its synced prefix plus at most `torn_extra`
    /// bytes of its unsynced tail (a torn in-flight write). Returns a
    /// fresh fault-free disk holding the image.
    // alloc: cold-fn (fault-injection snapshot for chaos tests, never on the write path)
    pub fn crash_image_dropping_unsynced(&self, torn_extra: usize) -> MemVfs {
        let s = self.state.lock();
        let files = s
            .files
            .iter()
            .map(|(name, f)| {
                let keep = f.bytes.len().min(f.synced.saturating_add(torn_extra));
                (
                    name.clone(),
                    MemFileData {
                        bytes: f.bytes.get(..keep).unwrap_or(&[]).to_vec(),
                        synced: keep,
                    },
                )
            })
            .collect();
        MemVfs {
            state: Arc::new(Mutex::new(MemDiskState {
                files,
                ..MemDiskState::default()
            })),
        }
    }

    /// Flip a single bit at `(file-index, byte, bit)` — corruption
    /// injection for recovery tests. Returns false when out of range.
    pub fn flip_bit(&self, name: &str, byte: usize, bit: u8) -> bool {
        let mut s = self.state.lock();
        match s.files.get_mut(name).and_then(|f| f.bytes.get_mut(byte)) {
            Some(b) => {
                *b ^= 1u8 << (bit % 8);
                true
            }
            None => false,
        }
    }

    /// Total bytes currently stored across every file.
    pub fn total_bytes(&self) -> u64 {
        let s = self.state.lock();
        s.files.values().map(|f| f.bytes.len() as u64).sum()
    }
}

impl fmt::Debug for MemVfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock();
        f.debug_struct("MemVfs")
            .field("files", &s.files.len())
            .field("appended_total", &s.appended_total)
            .field("killed", &s.killed)
            .finish()
    }
}

/// Handle to one file on a [`MemVfs`] disk.
struct MemFile {
    state: Arc<Mutex<MemDiskState>>,
    name: String,
}

impl DurFile for MemFile {
    fn append(&mut self, buf: &[u8]) -> Result<(), DiskError> {
        let mut s = self.state.lock();
        if s.killed {
            return Err(DiskError::Killed);
        }
        let ordinal = s.appends;
        s.appends += 1;
        // Kill-at-offset: persist up to the boundary, then die.
        if let Some(kill) = s.plan.kill_at_offset {
            let room = kill.saturating_sub(s.appended_total);
            if (buf.len() as u64) > room {
                let keep = room as usize;
                s.appended_total += keep as u64;
                s.killed = true;
                let kept = buf.get(..keep).unwrap_or(&[]);
                if let Some(f) = s.files.get_mut(&self.name) {
                    f.bytes.extend_from_slice(kept);
                }
                return Err(DiskError::Killed);
            }
        }
        if s.plan.short_write(ordinal) {
            let keep = buf.len() / 2;
            s.appended_total += keep as u64;
            let kept = buf.get(..keep).unwrap_or(&[]);
            if let Some(f) = s.files.get_mut(&self.name) {
                f.bytes.extend_from_slice(kept);
            }
            return Err(DiskError::ShortWrite { wrote: keep });
        }
        s.appended_total += buf.len() as u64;
        match s.files.get_mut(&self.name) {
            Some(f) => {
                f.bytes.extend_from_slice(buf);
                Ok(())
            }
            // alloc: cold (error path: the backing file was removed under us)
            None => Err(DiskError::Io(format!("{}: file removed", self.name))),
        }
    }

    fn sync(&mut self) -> Result<(), DiskError> {
        let mut s = self.state.lock();
        if s.killed {
            return Err(DiskError::Killed);
        }
        let ordinal = s.syncs;
        s.syncs += 1;
        if s.plan.sync_fails(ordinal) {
            return Err(DiskError::SyncFailed);
        }
        match s.files.get_mut(&self.name) {
            Some(f) => {
                f.synced = f.bytes.len();
                Ok(())
            }
            // alloc: cold (error path: the backing file was removed under us)
            None => Err(DiskError::Io(format!("{}: file removed", self.name))),
        }
    }

    fn truncate(&mut self, len: u64) -> Result<(), DiskError> {
        let mut s = self.state.lock();
        if s.killed {
            return Err(DiskError::Killed);
        }
        match s.files.get_mut(&self.name) {
            Some(f) => {
                f.bytes.truncate(len as usize);
                f.synced = f.synced.min(f.bytes.len());
                Ok(())
            }
            // alloc: cold (error path: the backing file was removed under us)
            None => Err(DiskError::Io(format!("{}: file removed", self.name))),
        }
    }

    fn len(&self) -> u64 {
        let s = self.state.lock();
        s.files
            .get(&self.name)
            .map(|f| f.bytes.len() as u64)
            .unwrap_or(0)
    }
}

impl Vfs for MemVfs {
    // alloc: cold-fn (file open, startup/recovery-time; appends reuse the handle)
    fn open_append(&self, name: &str, keep: u64) -> Result<Box<dyn DurFile>, DiskError> {
        {
            let mut s = self.state.lock();
            if s.killed {
                return Err(DiskError::Killed);
            }
            let f = s.files.entry(name.to_string()).or_default();
            f.bytes.truncate(keep as usize);
            f.synced = f.synced.min(f.bytes.len());
        }
        Ok(Box::new(MemFile {
            state: Arc::clone(&self.state),
            name: name.to_string(),
        }))
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DiskError> {
        let s = self.state.lock();
        if s.killed {
            return Err(DiskError::Killed);
        }
        Ok(s.files.get(name).map(|f| f.bytes.clone())) // alloc: cold (whole-file read, recovery-time only)
    }

    fn remove(&self, name: &str) -> Result<(), DiskError> {
        let mut s = self.state.lock();
        if s.killed {
            return Err(DiskError::Killed);
        }
        s.files.remove(name);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, DiskError> {
        let s = self.state.lock();
        if s.killed {
            return Err(DiskError::Killed);
        }
        Ok(s.files.keys().cloned().collect()) // alloc: cold (directory listing, recovery-time only)
    }
}

// ---------------------------------------------------------------------
// Real filesystem backend
// ---------------------------------------------------------------------

fn io_err(e: std::io::Error) -> DiskError {
    DiskError::Io(e.to_string()) // alloc: cold (error path)
}

/// Real files under one directory, via `std::fs`. Appends buffer in
/// the OS page cache until [`DurFile::sync`] (`fdatasync`), matching
/// the durability semantics [`MemVfs`] models.
#[derive(Clone, Debug)]
pub struct FsVfs {
    root: PathBuf,
}

impl FsVfs {
    /// Open (creating if needed) the directory `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<FsVfs, DiskError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(io_err)?;
        Ok(FsVfs { root })
    }

    /// The backing directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }
}

/// Handle to one real file.
struct FsFile {
    file: fs::File,
    len: u64,
}

impl DurFile for FsFile {
    fn append(&mut self, buf: &[u8]) -> Result<(), DiskError> {
        self.file.write_all(buf).map_err(io_err)?;
        self.len += buf.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), DiskError> {
        self.file.sync_data().map_err(io_err)
    }

    fn truncate(&mut self, len: u64) -> Result<(), DiskError> {
        self.file.set_len(len).map_err(io_err)?;
        self.file.seek(SeekFrom::End(0)).map_err(io_err)?;
        self.len = len;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

impl Vfs for FsVfs {
    // alloc: cold-fn (file open, startup/recovery-time; appends reuse the handle)
    fn open_append(&self, name: &str, keep: u64) -> Result<Box<dyn DurFile>, DiskError> {
        let path = self.root.join(name);
        let file = fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)
            .map_err(io_err)?;
        file.set_len(keep).map_err(io_err)?;
        let mut file = file;
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        Ok(Box::new(FsFile { file, len: keep }))
    }

    // alloc: cold-fn (whole-file read, recovery-time only)
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DiskError> {
        let path = self.root.join(name);
        match fs::File::open(&path) {
            Ok(mut f) => {
                let mut buf = Vec::new();
                f.read_to_end(&mut buf).map_err(io_err)?;
                Ok(Some(buf))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(e)),
        }
    }

    fn remove(&self, name: &str) -> Result<(), DiskError> {
        match fs::remove_file(self.root.join(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(e)),
        }
    }

    // alloc: cold-fn (directory listing, recovery-time only)
    fn list(&self) -> Result<Vec<String>, DiskError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            if let Some(name) = entry.file_name().to_str() {
                out.push(name.to_string());
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn mem_append_sync_read_round_trip() {
        let vfs = MemVfs::new();
        let mut f = vfs.open_append("a.wal", 0).unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        assert_eq!(f.len(), 11);
        f.sync().unwrap();
        assert_eq!(vfs.read("a.wal").unwrap().unwrap(), b"hello world");
        assert_eq!(vfs.read("missing").unwrap(), None);
        assert_eq!(vfs.list().unwrap(), vec!["a.wal".to_string()]);
        vfs.remove("a.wal").unwrap();
        assert_eq!(vfs.read("a.wal").unwrap(), None);
        vfs.remove("a.wal").unwrap(); // idempotent
    }

    #[test]
    fn open_append_truncates_to_keep() {
        let vfs = MemVfs::new();
        let mut f = vfs.open_append("x", 0).unwrap();
        f.append(b"0123456789").unwrap();
        f.sync().unwrap();
        drop(f);
        let f2 = vfs.open_append("x", 4).unwrap();
        assert_eq!(f2.len(), 4);
        drop(f2);
        assert_eq!(vfs.read("x").unwrap().unwrap(), b"0123");
    }

    #[test]
    fn kill_at_offset_tears_the_straddling_append() {
        let vfs = MemVfs::with_faults(DiskFaultPlan::kill_at(7));
        let mut f = vfs.open_append("w", 0).unwrap();
        f.append(b"0123").unwrap(); // 4 bytes, under the limit
        let err = f.append(b"abcdef").unwrap_err(); // would cross 7
        assert_eq!(err, DiskError::Killed);
        assert_eq!(f.sync().unwrap_err(), DiskError::Killed);
        assert!(vfs.stats().killed);
        // The crash image holds exactly the persisted 7 bytes.
        let image = vfs.crash_image();
        assert_eq!(image.read("w").unwrap().unwrap(), b"0123abc");
        // The dead disk refuses everything.
        assert_eq!(vfs.read("w").unwrap_err(), DiskError::Killed);
        assert!(vfs.open_append("other", 0).is_err());
    }

    #[test]
    fn short_write_persists_half_and_reports() {
        let plan = DiskFaultPlan {
            short_write_at: vec![1],
            ..DiskFaultPlan::default()
        };
        let vfs = MemVfs::with_faults(plan);
        let mut f = vfs.open_append("w", 0).unwrap();
        f.append(b"good").unwrap();
        let err = f.append(b"broken!!").unwrap_err();
        assert_eq!(err, DiskError::ShortWrite { wrote: 4 });
        assert_eq!(f.len(), 8);
        // Caller repairs by truncating back to the record boundary.
        f.truncate(4).unwrap();
        f.append(b"broken!!").unwrap();
        f.sync().unwrap();
        assert_eq!(vfs.read("w").unwrap().unwrap(), b"goodbroken!!");
    }

    #[test]
    fn sync_failure_keeps_watermark_and_crash_drops_unsynced() {
        let plan = DiskFaultPlan {
            sync_fail_at: vec![1],
            ..DiskFaultPlan::default()
        };
        let vfs = MemVfs::with_faults(plan);
        let mut f = vfs.open_append("w", 0).unwrap();
        f.append(b"AAAA").unwrap();
        f.sync().unwrap(); // sync 0: ok, watermark 4
        f.append(b"BBBB").unwrap();
        assert_eq!(f.sync().unwrap_err(), DiskError::SyncFailed);
        f.append(b"CC").unwrap();
        // Power loss: synced prefix survives, plus 1 torn byte.
        let image = vfs.crash_image_dropping_unsynced(1);
        assert_eq!(image.read("w").unwrap().unwrap(), b"AAAAB");
        // With nothing torn, exactly the synced prefix survives.
        let image = vfs.crash_image_dropping_unsynced(0);
        assert_eq!(image.read("w").unwrap().unwrap(), b"AAAA");
    }

    #[test]
    fn bit_flips_hit_stored_bytes() {
        let vfs = MemVfs::new();
        let mut f = vfs.open_append("w", 0).unwrap();
        f.append(&[0u8; 4]).unwrap();
        assert!(vfs.flip_bit("w", 2, 3));
        assert!(!vfs.flip_bit("w", 99, 0));
        assert_eq!(vfs.read("w").unwrap().unwrap(), vec![0, 0, 8, 0]);
    }

    #[test]
    fn fs_vfs_round_trips_real_files() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(format!("tacc-vfs-test-{}", std::process::id()));
        let vfs = FsVfs::open(&dir).unwrap();
        let mut f = vfs.open_append("a.seg", 0).unwrap();
        f.append(b"columns").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(vfs.read("a.seg").unwrap().unwrap(), b"columns");
        assert!(vfs.list().unwrap().contains(&"a.seg".to_string()));
        // Reopen keeping a prefix, append more.
        let mut f = vfs.open_append("a.seg", 3).unwrap();
        assert_eq!(f.len(), 3);
        f.append(b"XY").unwrap();
        drop(f);
        assert_eq!(vfs.read("a.seg").unwrap().unwrap(), b"colXY");
        vfs.remove("a.seg").unwrap();
        assert_eq!(vfs.read("a.seg").unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
