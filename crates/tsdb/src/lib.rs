//! # tacc-tsdb — tagged time-series database (OpenTSDB substitute)
//!
//! §VI-A of the paper: "we are importing data into the time-series
//! database OpenTSDB. The data in this database is organized into
//! time-series with each series labeled by a tuple of tags, where a tag
//! in our setup consists of a host name, device type, device name, and
//! event name. The time-series can be aggregated along any subset of
//! these tags and their values."
//!
//! This crate implements exactly that: series keyed by the 4-tuple
//! ([`SeriesKey`]), wildcard tag filters ([`TagFilter`]), aggregation
//! across matching series with downsampling ([`TsDb::aggregate`]), and
//! the correlation query the section motivates ("a particular user's
//! metadata requests … could be related to other users' increased Lustre
//! operation wait times") via [`stats::pearson`] over aligned buckets.
//!
//! The store can also run **durable** ([`TsDb::recover`]): each shard
//! keeps a CRC-framed write-ahead log for unsealed series tails and an
//! append-only segment file of sealed columnar blocks, compacts them
//! by generation, and recovers from a kill at *any* byte offset losing
//! at most the unsynced WAL tail — with conservation accounting in
//! [`RecoveryReport`]. See [`vfs`] (fault-injectable file layer) and
//! [`recover`]; the WAL and segment formats live in `wal.rs` and
//! `segment.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod recover;
mod segment;
pub mod series;
pub mod shard;
pub mod stats;
pub mod store;
mod sync;
pub mod vfs;
mod wal;

pub use block::{
    BlockCursor, SealScratch, SealedBlock, SeriesBlocks, SeriesCursor, SEAL_THRESHOLD,
};
pub use recover::{DurOptions, RecoveryReport, SegmentCheck};
pub use series::{SeriesKey, TagFilter};
pub use shard::{shard_of, DEFAULT_SHARDS};
pub use store::{Aggregation, DataPoint, DurabilityStats, TsDb};
pub use vfs::{DiskError, DurFile, FsVfs, MemVfs, Vfs};
