//! Statistics over (aligned) series: the correlation machinery behind the
//! paper's §V-B production-population numbers and the §VI-A interference
//! analysis.

/// Pearson correlation coefficient of paired samples. Returns `None` for
/// fewer than two pairs or zero variance on either side.
pub fn pearson(pairs: &[(f64, f64)]) -> Option<f64> {
    let n = pairs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = pairs.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = pairs.iter().map(|p| p.1).sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (x, y) in pairs {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Mean of a slice (None if empty).
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample standard deviation (None for fewer than 2 values).
pub fn stddev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// p-quantile (0..=1) by linear interpolation on a sorted copy.
pub fn quantile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&p) {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let pos = p * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        Some(v[lo] + (pos - lo as f64) * (v[hi] - v[lo]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pearson_perfect_correlations() {
        let up: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        assert!((pearson(&up).unwrap() - 1.0).abs() < 1e-12);
        let down: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -3.0 * i as f64)).collect();
        assert!((pearson(&down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[]), None);
        assert_eq!(pearson(&[(1.0, 2.0)]), None);
        assert_eq!(pearson(&[(1.0, 2.0), (1.0, 3.0)]), None); // zero x variance
    }

    #[test]
    fn pearson_known_value() {
        // Hand-computed example.
        let pairs = [(1.0, 2.0), (2.0, 1.0), (3.0, 4.0), (4.0, 3.0)];
        let r = pearson(&pairs).unwrap();
        assert!((r - 0.6).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn quantiles_and_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        let sd = stddev(&xs).unwrap();
        assert!((sd - 1.2909944487358056).abs() < 1e-12);
        assert_eq!(mean(&[]), None);
        assert_eq!(stddev(&[1.0]), None);
        assert_eq!(quantile(&xs, 1.5), None);
    }

    proptest! {
        /// |r| <= 1 always.
        #[test]
        fn pearson_bounded(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50)) {
            if let Some(r) = pearson(&pairs) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }

        /// Invariance under affine transforms with positive scale.
        #[test]
        fn pearson_affine_invariant(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..30),
            a in 0.1f64..10.0,
            b in -100.0f64..100.0,
        ) {
            let scaled: Vec<(f64, f64)> = pairs.iter().map(|(x, y)| (a * x + b, *y)).collect();
            match (pearson(&pairs), pearson(&scaled)) {
                (Some(r1), Some(r2)) => prop_assert!((r1 - r2).abs() < 1e-6),
                (None, None) => {}
                // Scaling can push a tiny variance to exactly zero (or
                // rescue it); tolerate the disagreement only near zero
                // variance, which the generator rarely hits.
                _ => {}
            }
        }
    }
}
