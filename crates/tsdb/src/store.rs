//! The time-series store: insertion, range queries, aggregation,
//! downsampling.
//!
//! Series are stored columnar: each [`SeriesKey`] maps to sealed
//! compressed blocks plus a mutable head ([`crate::block`]). Queries
//! stream decoded points straight into their fold — `aggregate` and
//! `aligned` never materialize an intermediate `Vec<DataPoint>`, and
//! the [`TsDb::range_for_each`] / [`TsDb::with_cursor`] APIs let read
//! paths (the portal's detail page) consume points without the
//! copy-out `Vec` that [`TsDb::range`] keeps for convenience.
//!
//! The store is sharded ([`crate::shard`]): keys route by tag-id hash
//! to [`crate::shard::DEFAULT_SHARDS`] independent shards, each behind
//! its own reader-writer lock with its own decoded-block cache and
//! seal scratch. Ingest and queries on series in different shards
//! never contend. When a [`WorkerPool`] is attached
//! ([`TsDb::set_pool`]), `aggregate` runs its dense fold as one
//! partition scan per shard on the pool and merges the per-shard
//! partial buckets; without a pool the fold visits shards
//! sequentially. Counts, `Max` and `Min` are identical either way;
//! `Sum`/`Avg` may differ by float-addition order across shard
//! layouts, never by contents. Cross-shard queries lock shards one at
//! a time, so a query concurrent with ingest sees each *shard*
//! consistently but not a single global snapshot — the same guarantee
//! the monitoring pipeline needs (readers of a series see a prefix of
//! it), for much better write concurrency.

use crate::block::{SeriesBlocks, SeriesCursor};
use crate::series::{SeriesKey, TagFilter};
use crate::shard::{shard_of, Shard, ShardData, DEFAULT_SHARDS};
use std::collections::BTreeMap;
use std::sync::Arc;
use tacc_simnode::pool::WorkerPool;

/// One timestamped value (seconds since the Unix epoch).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataPoint {
    /// Unix seconds.
    pub t: u64,
    /// Value.
    pub v: f64,
}

/// How to combine values from different series that land in the same
/// downsample bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregation {
    /// Sum across series (e.g. cluster-wide metadata request rate).
    Sum,
    /// Mean across contributing points.
    Avg,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

/// Per-bucket fold state: (sum, count, max, min).
type Acc = (f64, usize, f64, f64);

const ACC_ZERO: Acc = (0.0, 0, f64::NEG_INFINITY, f64::INFINITY);

/// Thread-safe tagged time-series database, sharded by key hash.
pub struct TsDb {
    shards: Box<[Shard]>,
    pool: Option<Arc<WorkerPool>>,
}

impl Default for TsDb {
    fn default() -> TsDb {
        TsDb::new()
    }
}

impl TsDb {
    /// New empty database with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> TsDb {
        TsDb::with_shards(DEFAULT_SHARDS)
    }

    /// New empty database with `n` shards (`0` is treated as `1`).
    pub fn with_shards(n: usize) -> TsDb {
        TsDb {
            shards: (0..n.max(1)).map(|_| Shard::default()).collect(),
            pool: None,
        }
    }

    /// Attach a worker pool: `aggregate` dense folds become parallel
    /// per-shard partition scans. Builder-style variant of
    /// [`TsDb::set_pool`].
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> TsDb {
        self.pool = Some(pool);
        self
    }

    /// Attach a worker pool (see [`TsDb::with_pool`]).
    pub fn set_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Number of shards the key space is split into.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &SeriesKey) -> &Shard {
        &self.shards[shard_of(key, self.shards.len())]
    }

    /// Insert one point. Out-of-order inserts are tolerated (kept
    /// sorted; a late point older than the sealed range merges into
    /// the one block it overlaps). Only the owning shard is locked.
    pub fn insert(&self, key: SeriesKey, t: u64, v: f64) {
        let mut data = self.shard(&key).data.write();
        let ShardData {
            series,
            seal_scratch,
        } = &mut *data;
        series
            .entry(key)
            .or_default()
            .push_with_scratch(t, v, seal_scratch);
    }

    /// Number of series stored.
    pub fn n_series(&self) -> usize {
        self.shards.iter().map(|s| s.data.read().series.len()).sum()
    }

    /// Total points stored.
    pub fn n_points(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.data
                    .read()
                    .series
                    .values()
                    .map(SeriesBlocks::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Bytes held by the stored columns: encoded sealed blocks plus the
    /// raw mutable heads. Compare against `16 * n_points()` (the
    /// point-vec representation) for the compression ratio.
    pub fn storage_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.data
                    .read()
                    .series
                    .values()
                    .map(|sb| sb.sealed_bytes() + (sb.len() - sb.sealed_len()) * 16)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Total sealed blocks across all series.
    pub fn n_sealed_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.data
                    .read()
                    .series
                    .values()
                    .map(SeriesBlocks::n_sealed)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Keys matching a filter, in key order.
    pub fn keys(&self, filter: &TagFilter) -> Vec<SeriesKey> {
        let mut out: Vec<SeriesKey> = Vec::new();
        for shard in self.shards.iter() {
            let data = shard.data.read();
            out.extend(data.series.keys().filter(|k| filter.matches(k)).cloned());
        }
        // Each shard's BTreeMap iterates sorted, but shards interleave
        // the global order; restore it so callers see what the single
        // map used to produce.
        out.sort();
        out
    }

    /// Raw points of one series within `[t0, t1)`.
    ///
    /// Copies points out into a `Vec`; hot read paths should prefer
    /// [`TsDb::range_for_each`] or [`TsDb::with_cursor`].
    pub fn range(&self, key: &SeriesKey, t0: u64, t1: u64) -> Vec<DataPoint> {
        let mut out = Vec::new();
        self.range_for_each(key, t0, t1, |t, v| out.push(DataPoint { t, v }));
        out
    }

    /// Stream the points of one series within `[t0, t1)` to `f`, in
    /// timestamp order, serving sealed blocks from the owning shard's
    /// decoded-block cache — repeated reads over the same block decode
    /// it once. Returns the number of points visited.
    pub fn range_for_each(
        &self,
        key: &SeriesKey,
        t0: u64,
        t1: u64,
        mut f: impl FnMut(u64, f64),
    ) -> usize {
        self.shard(key).range_for_each(key, t0, t1, &mut f)
    }

    /// Run `f` with a pull-based [`SeriesCursor`] over `[t0, t1)` of
    /// one series. The cursor borrows the owning shard's read lock for
    /// the duration of `f`, so points are decoded on demand and never
    /// copied into an intermediate buffer. Returns `None` when the
    /// series does not exist.
    pub fn with_cursor<R>(
        &self,
        key: &SeriesKey,
        t0: u64,
        t1: u64,
        f: impl FnOnce(&mut SeriesCursor<'_>) -> R,
    ) -> Option<R> {
        let data = self.shard(key).data.read();
        data.series.get(key).map(|series| {
            let mut cursor = series.cursor_in(t0, t1);
            f(&mut cursor)
        })
    }

    /// Aggregate all series matching `filter` over `[t0, t1)`, bucketed
    /// into `bucket_secs`-wide windows aligned to `t0`. Buckets with no
    /// data are omitted. This is OpenTSDB's "aggregate along any subset
    /// of tags": the tags left `None` in the filter are the ones summed
    /// over. With a pool attached the dense fold runs as one partition
    /// scan per shard, merged bucket-by-bucket.
    pub fn aggregate(
        &self,
        filter: &TagFilter,
        agg: Aggregation,
        t0: u64,
        t1: u64,
        bucket_secs: u64,
    ) -> Vec<DataPoint> {
        assert!(bucket_secs > 0, "bucket width must be positive");
        let finish = |sum: f64, n: usize, max: f64, min: f64| match agg {
            Aggregation::Sum => sum,
            Aggregation::Avg => sum / n as f64,
            Aggregation::Max => max,
            Aggregation::Min => min,
        };
        if t1 <= t0 {
            return Vec::new();
        }
        // Clamp the requested window to the data actually present
        // (block metadata only — nothing is decoded), so open-ended
        // queries still take the dense-bucket path below.
        let mut data_min = u64::MAX;
        let mut data_max = 0u64;
        let mut any = false;
        for shard in self.shards.iter() {
            let data = shard.data.read();
            for (key, series) in &data.series {
                if !filter.matches(key) {
                    continue;
                }
                if let (Some(lo), Some(hi)) = (series.min_t(), series.max_t()) {
                    any = true;
                    data_min = data_min.min(lo);
                    data_max = data_max.max(hi);
                }
            }
        }
        let eff_lo = data_min.max(t0);
        let eff_hi = data_max.min(t1 - 1); // inclusive upper bound
        if !any || eff_hi < eff_lo {
            return Vec::new();
        }
        let lo_b = (eff_lo - t0) / bucket_secs;
        let hi_b = (eff_hi - t0) / bucket_secs;
        let span = hi_b - lo_b + 1;
        // A flat bucket array beats a tree for every realistic window
        // (a month of 1 h buckets is 720 entries); degenerate sparse
        // spans fall back to the tree.
        const DENSE_MAX: u64 = 1 << 16;
        if span <= DENSE_MAX {
            let dense = match self.pool.as_deref() {
                // Parallel partition scan: one dense partial per
                // shard, merged bucket-by-bucket in shard order (so
                // the result is deterministic for a given layout).
                Some(pool) if pool.workers() > 1 && self.shards.len() > 1 => {
                    let partials = pool.map_parts(self.shards.len(), |i, _scratch| {
                        let mut part = vec![ACC_ZERO; span as usize];
                        let data = self.shards[i].data.read();
                        fold_dense(&data, filter, t0, t1, bucket_secs, lo_b, &mut part);
                        part
                    });
                    let mut dense = vec![ACC_ZERO; span as usize];
                    for part in partials {
                        for (e, p) in dense.iter_mut().zip(part) {
                            e.0 += p.0;
                            e.1 += p.1;
                            e.2 = e.2.max(p.2);
                            e.3 = e.3.min(p.3);
                        }
                    }
                    dense
                }
                // Sequential: fold every shard into one dense buffer
                // (a single allocation per query).
                _ => {
                    let mut dense = vec![ACC_ZERO; span as usize];
                    for shard in self.shards.iter() {
                        let data = shard.data.read();
                        fold_dense(&data, filter, t0, t1, bucket_secs, lo_b, &mut dense);
                    }
                    dense
                }
            };
            return dense
                .into_iter()
                .enumerate()
                .filter(|&(_, (_, n, _, _))| n > 0)
                .map(|(i, (sum, n, max, min))| DataPoint {
                    t: t0 + (lo_b + i as u64) * bucket_secs,
                    v: finish(sum, n, max, min),
                })
                .collect();
        }
        // bucket index → (sum, count, max, min)
        let mut buckets: BTreeMap<u64, Acc> = BTreeMap::new();
        for shard in self.shards.iter() {
            let data = shard.data.read();
            for (key, series) in &data.series {
                if !filter.matches(key) {
                    continue;
                }
                series.for_each_in(t0, t1, |t, v| {
                    let b = (t - t0) / bucket_secs;
                    let e = buckets.entry(b).or_insert(ACC_ZERO);
                    e.0 += v;
                    e.1 += 1;
                    e.2 = e.2.max(v);
                    e.3 = e.3.min(v);
                });
            }
        }
        buckets
            .into_iter()
            .map(|(b, (sum, n, max, min))| DataPoint {
                t: t0 + b * bucket_secs,
                v: finish(sum, n, max, min),
            })
            .collect()
    }

    /// Align two aggregated series on their common buckets and return the
    /// paired values — the input to a §VI-A interference correlation.
    pub fn aligned(
        &self,
        a: (&TagFilter, Aggregation),
        b: (&TagFilter, Aggregation),
        t0: u64,
        t1: u64,
        bucket_secs: u64,
    ) -> Vec<(f64, f64)> {
        let sa = self.aggregate(a.0, a.1, t0, t1, bucket_secs);
        let sb = self.aggregate(b.0, b.1, t0, t1, bucket_secs);
        let mb: BTreeMap<u64, f64> = sb.into_iter().map(|p| (p.t, p.v)).collect();
        sa.into_iter()
            .filter_map(|p| mb.get(&p.t).map(|v| (p.v, *v)))
            .collect()
    }
}

/// Fold one shard's matching series into dense buckets (indices
/// relative to `lo_b`). Shared by the sequential and parallel paths so
/// both run the identical per-point fold.
fn fold_dense(
    data: &ShardData,
    filter: &TagFilter,
    t0: u64,
    t1: u64,
    bucket_secs: u64,
    lo_b: u64,
    dense: &mut [Acc],
) {
    for (key, series) in &data.series {
        if !filter.matches(key) {
            continue;
        }
        series.for_each_in(t0, t1, |t, v| {
            let b = ((t - t0) / bucket_secs).saturating_sub(lo_b) as usize;
            if let Some(e) = dense.get_mut(b) {
                e.0 += v;
                e.1 += 1;
                e.2 = e.2.max(v);
                e.3 = e.3.min(v);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(host: &str, event: &str) -> SeriesKey {
        SeriesKey::new(host, "mdc", "scratch", event)
    }

    #[test]
    fn insert_and_range() {
        let db = TsDb::new();
        for t in [100u64, 200, 300, 400] {
            db.insert(key("c1", "reqs"), t, t as f64);
        }
        let pts = db.range(&key("c1", "reqs"), 150, 350);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].t, 200);
        assert_eq!(db.n_series(), 1);
        assert_eq!(db.n_points(), 4);
    }

    #[test]
    fn out_of_order_insert_keeps_sorted() {
        let db = TsDb::new();
        db.insert(key("c1", "reqs"), 300, 3.0);
        db.insert(key("c1", "reqs"), 100, 1.0);
        db.insert(key("c1", "reqs"), 200, 2.0);
        let pts = db.range(&key("c1", "reqs"), 0, 1000);
        let ts: Vec<u64> = pts.iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![100, 200, 300]);
    }

    #[test]
    fn aggregate_sums_across_hosts() {
        // "aggregated along any subset of these tags": leave host
        // unspecified to sum the per-host series.
        let db = TsDb::new();
        for host in ["c1", "c2", "c3"] {
            db.insert(key(host, "reqs"), 100, 10.0);
            db.insert(key(host, "reqs"), 700, 20.0);
        }
        db.insert(key("c1", "wait"), 100, 999.0); // different event: excluded
        let f = TagFilter::any().dev_type("mdc").event("reqs");
        let series = db.aggregate(&f, Aggregation::Sum, 0, 1000, 600);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], DataPoint { t: 0, v: 30.0 });
        assert_eq!(series[1], DataPoint { t: 600, v: 60.0 });
    }

    #[test]
    fn aggregate_avg_max_min() {
        let db = TsDb::new();
        db.insert(key("c1", "reqs"), 10, 1.0);
        db.insert(key("c2", "reqs"), 20, 3.0);
        let f = TagFilter::any().event("reqs");
        assert_eq!(db.aggregate(&f, Aggregation::Avg, 0, 100, 100)[0].v, 2.0);
        assert_eq!(db.aggregate(&f, Aggregation::Max, 0, 100, 100)[0].v, 3.0);
        assert_eq!(db.aggregate(&f, Aggregation::Min, 0, 100, 100)[0].v, 1.0);
    }

    #[test]
    fn empty_buckets_are_omitted() {
        let db = TsDb::new();
        db.insert(key("c1", "reqs"), 0, 1.0);
        db.insert(key("c1", "reqs"), 1200, 1.0);
        let f = TagFilter::any();
        let s = db.aggregate(&f, Aggregation::Sum, 0, 1800, 600);
        let ts: Vec<u64> = s.iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![0, 1200]);
    }

    #[test]
    fn aligned_pairs_common_buckets_only() {
        let db = TsDb::new();
        db.insert(key("c1", "reqs"), 0, 5.0);
        db.insert(key("c1", "reqs"), 600, 7.0);
        db.insert(key("c1", "wait"), 600, 70.0);
        db.insert(key("c1", "wait"), 1200, 80.0);
        let fa = TagFilter::any().event("reqs");
        let fb = TagFilter::any().event("wait");
        let pairs = db.aligned(
            (&fa, Aggregation::Sum),
            (&fb, Aggregation::Sum),
            0,
            1800,
            600,
        );
        assert_eq!(pairs, vec![(7.0, 70.0)]);
    }

    #[test]
    fn range_for_each_streams_in_order() {
        let db = TsDb::new();
        // Enough points to roll at least one sealed block.
        for i in 0..1500u64 {
            db.insert(key("c1", "reqs"), i * 10, i as f64);
        }
        assert!(db.n_sealed_blocks() >= 1);
        let mut got = Vec::new();
        let n = db.range_for_each(&key("c1", "reqs"), 100, 300, |t, v| got.push((t, v)));
        assert_eq!(n, got.len());
        let want: Vec<(u64, f64)> = db
            .range(&key("c1", "reqs"), 100, 300)
            .iter()
            .map(|p| (p.t, p.v))
            .collect();
        assert_eq!(got, want);
        assert_eq!(
            db.range_for_each(&key("c9", "reqs"), 0, 100, |_, _| {}),
            0,
            "missing series visits nothing"
        );
    }

    #[test]
    fn cursor_matches_range() {
        let db = TsDb::new();
        for i in 0..2000u64 {
            db.insert(key("c1", "reqs"), i, (i * 2) as f64);
        }
        let via_cursor: Vec<(u64, f64)> = db
            .with_cursor(&key("c1", "reqs"), 500, 1600, |cur| {
                let mut out = Vec::new();
                while let Some(p) = cur.next_point() {
                    out.push(p);
                }
                out
            })
            .unwrap();
        let via_range: Vec<(u64, f64)> = db
            .range(&key("c1", "reqs"), 500, 1600)
            .iter()
            .map(|p| (p.t, p.v))
            .collect();
        assert_eq!(via_cursor, via_range);
        assert!(db.with_cursor(&key("c9", "x"), 0, 1, |_| ()).is_none());
    }

    #[test]
    fn shard_counts_do_not_change_query_results() {
        // The same inserts against 1..=8 shards answer every query the
        // same way (Sum within one bucket is order-sensitive only in
        // float rounding; these values are exact in f64).
        let mk = |shards: usize| {
            let db = TsDb::with_shards(shards);
            for h in 0..16 {
                for i in 0..600u64 {
                    db.insert(key(&format!("c{h:02}"), "reqs"), i * 10, (i % 7) as f64);
                }
            }
            db
        };
        let reference = mk(1);
        let f = TagFilter::any().event("reqs");
        let ref_keys = reference.keys(&TagFilter::any());
        let ref_agg = reference.aggregate(&f, Aggregation::Max, 0, 6000, 600);
        for shards in [2usize, 4, 8] {
            let db = mk(shards);
            assert_eq!(db.n_shards(), shards);
            assert_eq!(db.n_series(), reference.n_series());
            assert_eq!(db.n_points(), reference.n_points());
            assert_eq!(db.keys(&TagFilter::any()), ref_keys, "{shards} shards");
            assert_eq!(
                db.aggregate(&f, Aggregation::Max, 0, 6000, 600),
                ref_agg,
                "{shards} shards"
            );
            let k = key("c03", "reqs");
            assert_eq!(db.range(&k, 100, 2000), reference.range(&k, 100, 2000));
        }
    }

    #[test]
    fn pooled_aggregate_matches_sequential() {
        let seq = TsDb::new();
        let par = TsDb::new().with_pool(Arc::new(WorkerPool::new(4)));
        for h in 0..12 {
            for i in 0..700u64 {
                let k = key(&format!("n{h:02}"), "reqs");
                seq.insert(k.clone(), i * 60, (h * 1000 + i) as f64);
                par.insert(k, i * 60, (h * 1000 + i) as f64);
            }
        }
        let f = TagFilter::any().event("reqs");
        for agg in [
            Aggregation::Sum,
            Aggregation::Avg,
            Aggregation::Max,
            Aggregation::Min,
        ] {
            let a = seq.aggregate(&f, agg, 0, 700 * 60, 3600);
            let b = par.aggregate(&f, agg, 0, 700 * 60, 3600);
            assert_eq!(a.len(), b.len(), "{agg:?}");
            for (pa, pb) in a.iter().zip(b.iter()) {
                assert_eq!(pa.t, pb.t);
                // Shard merge may reassociate float additions; the
                // values here are integral and exact either way.
                assert!(
                    (pa.v - pb.v).abs() <= 1e-9 * (1.0 + pa.v.abs()),
                    "{agg:?}: {} vs {}",
                    pa.v,
                    pb.v
                );
            }
        }
    }

    proptest! {
        /// Sum aggregation is linear: the sum over all hosts equals the
        /// sum of per-host aggregates, bucket by bucket.
        #[test]
        fn sum_aggregation_is_linear(
            pts in proptest::collection::vec((0u64..3, 0u64..3600, -1e6f64..1e6), 1..80)
        ) {
            let db = TsDb::new();
            for (h, t, v) in &pts {
                db.insert(key(&format!("c{h}"), "reqs"), *t, *v);
            }
            let all = db.aggregate(&TagFilter::any(), Aggregation::Sum, 0, 3600, 600);
            let mut per_host: BTreeMap<u64, f64> = BTreeMap::new();
            for h in 0..3u64 {
                let f = TagFilter::any().host(&format!("c{h}"));
                for p in db.aggregate(&f, Aggregation::Sum, 0, 3600, 600) {
                    *per_host.entry(p.t).or_default() += p.v;
                }
            }
            prop_assert_eq!(all.len(), per_host.len());
            for p in all {
                let want = per_host[&p.t];
                prop_assert!((p.v - want).abs() <= 1e-9 * (1.0 + want.abs()));
            }
        }

        /// Sharded stores answer exactly like a single-shard reference
        /// for arbitrary interleaved ingest: `range_for_each` (and the
        /// cached read path under it) is bit-identical; `aggregate`
        /// counts/extrema are identical and sums agree to rounding.
        #[test]
        fn sharded_queries_match_single_shard_reference(
            pts in proptest::collection::vec(
                (0u64..4, 0u64..4000, -1e9f64..1e9), 1..700),
            shards in 2usize..=8
        ) {
            let reference = TsDb::with_shards(1);
            let db = TsDb::with_shards(shards);
            for (h, t, v) in &pts {
                let k = key(&format!("w{h}"), "reqs");
                reference.insert(k.clone(), *t, *v);
                db.insert(k, *t, *v);
            }
            prop_assert_eq!(db.n_points(), reference.n_points());
            prop_assert_eq!(db.keys(&TagFilter::any()),
                            reference.keys(&TagFilter::any()));
            // Per-series reads are bit-identical (same per-series
            // storage, only the owning lock differs) — read twice so
            // the second pass exercises the decoded-block cache.
            for h in 0..4u64 {
                let k = key(&format!("w{h}"), "reqs");
                let want = reference.range(&k, 500, 3500);
                prop_assert_eq!(&db.range(&k, 500, 3500), &want);
                prop_assert_eq!(&db.range(&k, 500, 3500), &want);
            }
            // Aggregates: counts and extrema exact, sums to rounding.
            let f = TagFilter::any().event("reqs");
            for agg in [Aggregation::Max, Aggregation::Min] {
                prop_assert_eq!(
                    db.aggregate(&f, agg, 0, 4000, 600),
                    reference.aggregate(&f, agg, 0, 4000, 600)
                );
            }
            let a = db.aggregate(&f, Aggregation::Sum, 0, 4000, 600);
            let b = reference.aggregate(&f, Aggregation::Sum, 0, 4000, 600);
            prop_assert_eq!(a.len(), b.len());
            for (pa, pb) in a.iter().zip(b.iter()) {
                prop_assert_eq!(pa.t, pb.t);
                prop_assert!((pa.v - pb.v).abs() <= 1e-9 * (1.0 + pb.v.abs()));
            }
        }
    }
}
