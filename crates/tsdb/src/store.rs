//! The time-series store: insertion, range queries, aggregation,
//! downsampling.
//!
//! Series are stored columnar: each [`SeriesKey`] maps to sealed
//! compressed blocks plus a mutable head ([`crate::block`]). Queries
//! stream decoded points straight into their fold — `aggregate` and
//! `aligned` never materialize an intermediate `Vec<DataPoint>`, and
//! the [`TsDb::range_for_each`] / [`TsDb::with_cursor`] APIs let read
//! paths (the portal's detail page) consume points without the
//! copy-out `Vec` that [`TsDb::range`] keeps for convenience.
//!
//! The store is sharded ([`crate::shard`]): keys route by tag-id hash
//! to [`crate::shard::DEFAULT_SHARDS`] independent shards, each behind
//! its own reader-writer lock with its own decoded-block cache and
//! seal scratch. Ingest and queries on series in different shards
//! never contend. When a [`WorkerPool`] is attached
//! ([`TsDb::set_pool`]), `aggregate` runs its dense fold as one
//! partition scan per shard on the pool and merges the per-shard
//! partial buckets; without a pool the fold visits shards
//! sequentially. Counts, `Max` and `Min` are identical either way;
//! `Sum`/`Avg` may differ by float-addition order across shard
//! layouts, never by contents. Cross-shard queries lock shards one at
//! a time, so a query concurrent with ingest sees each *shard*
//! consistently but not a single global snapshot — the same guarantee
//! the monitoring pipeline needs (readers of a series see a prefix of
//! it), for much better write concurrency.

use crate::block::{SeriesBlocks, SeriesCursor};
use crate::recover::{self, compact_shard, DurOptions, RecoveryReport};
use crate::series::{SeriesKey, TagFilter};
use crate::shard::{shard_of, Shard, ShardData, DEFAULT_SHARDS};
use crate::vfs::{DiskError, Vfs};
use std::collections::BTreeMap;
use std::sync::Arc;
use tacc_simnode::pool::WorkerPool;

/// One timestamped value (seconds since the Unix epoch).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataPoint {
    /// Unix seconds.
    pub t: u64,
    /// Value.
    pub v: f64,
}

/// How to combine values from different series that land in the same
/// downsample bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregation {
    /// Sum across series (e.g. cluster-wide metadata request rate).
    Sum,
    /// Mean across contributing points.
    Avg,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

/// Per-bucket fold state: (sum, count, max, min).
type Acc = (f64, usize, f64, f64);

const ACC_ZERO: Acc = (0.0, 0, f64::NEG_INFINITY, f64::INFINITY);

/// Durability context shared by all shards of a durable store.
struct DurCtx {
    vfs: Arc<dyn Vfs>,
    opts: DurOptions,
}

/// Aggregate durability counters for a durable store, summed across
/// shards (see [`TsDb::durability_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Point records appended to shard WALs.
    pub points_appended: u64,
    /// Point records covered by a successful fsync.
    pub points_synced: u64,
    /// Point records whose WAL append failed (in memory only).
    pub points_failed: u64,
    /// WAL fsync attempts that failed.
    pub sync_failures: u64,
    /// Durability faults absorbed on the ingest path.
    pub io_errors: u64,
    /// Sealed blocks persisted with a durable marker sequence.
    pub seals_persisted: u64,
    /// Completed shard compactions.
    pub compactions: u64,
    /// Total WAL bytes across shards.
    pub wal_bytes: u64,
    /// Total segment bytes across shards.
    pub segment_bytes: u64,
    /// Highest shard generation.
    pub max_gen: u64,
}

impl DurabilityStats {
    /// Points at risk: appended-but-unsynced plus failed appends.
    pub fn points_at_risk(&self) -> u64 {
        (self.points_appended - self.points_synced) + self.points_failed
    }
}

/// Thread-safe tagged time-series database, sharded by key hash.
pub struct TsDb {
    shards: Box<[Shard]>,
    pool: Option<Arc<WorkerPool>>,
    /// Present when the store is durable ([`TsDb::recover`]).
    dur: Option<DurCtx>,
}

impl Default for TsDb {
    fn default() -> TsDb {
        TsDb::new()
    }
}

impl TsDb {
    /// New empty database with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> TsDb {
        TsDb::with_shards(DEFAULT_SHARDS)
    }

    /// New empty database with `n` shards (`0` is treated as `1`).
    pub fn with_shards(n: usize) -> TsDb {
        TsDb {
            shards: (0..n.max(1)).map(|_| Shard::default()).collect(),
            pool: None,
            dur: None,
        }
    }

    /// Open a durable store on `vfs`, recovering whatever state is on
    /// disk (an empty directory yields an empty store, so this is also
    /// the way to *create* a durable store). Returns the store plus
    /// the [`RecoveryReport`] conservation accounting for the pass.
    ///
    /// `shards` applies only on first creation; reopening always uses
    /// the persisted shard count (routing partitions the key space by
    /// shard count, so it must not drift between runs).
    ///
    /// Crash safety: after a kill at any byte offset, recovery loses
    /// at most the points past the last successful WAL fsync (bounded
    /// by [`DurOptions::sync_every`] per shard) — torn trailing
    /// records are skipped and truncated, never panicked on.
    pub fn recover(
        vfs: Arc<dyn Vfs>,
        shards: usize,
        opts: DurOptions,
    ) -> Result<(TsDb, RecoveryReport), DiskError> {
        let n = recover::read_or_init_shards(&*vfs, shards)?;
        let mut report = RecoveryReport::default();
        let mut built = Vec::with_capacity(n);
        for i in 0..n {
            let (mut data, dur) = recover::recover_shard(&*vfs, i, opts, &mut report)?;
            data.dur = Some(dur);
            built.push(Shard::with_data(data));
        }
        Ok((
            TsDb {
                shards: built.into_boxed_slice(),
                pool: None,
                dur: Some(DurCtx { vfs, opts }),
            },
            report,
        ))
    }

    /// Whether this store persists writes ([`TsDb::recover`]).
    pub fn is_durable(&self) -> bool {
        self.dur.is_some()
    }

    /// Attach a worker pool: `aggregate` dense folds become parallel
    /// per-shard partition scans. Builder-style variant of
    /// [`TsDb::set_pool`].
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> TsDb {
        self.pool = Some(pool);
        self
    }

    /// Attach a worker pool (see [`TsDb::with_pool`]).
    pub fn set_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Number of shards the key space is split into.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &SeriesKey) -> &Shard {
        &self.shards[shard_of(key, self.shards.len())]
    }

    /// Insert one point. Out-of-order inserts are tolerated (kept
    /// sorted; a late point older than the sealed range merges into
    /// the one block it overlaps). Only the owning shard is locked.
    /// On a durable store a disk fault is absorbed (availability over
    /// durability — the in-memory store still applies the point); use
    /// [`TsDb::try_insert`] to observe it.
    pub fn insert(&self, key: SeriesKey, t: u64, v: f64) {
        let _ = self.try_insert(key, t, v);
    }

    /// Insert one point, surfacing durability faults. The point is
    /// applied in memory *regardless* of the result; `Err` means its
    /// WAL record (or a seal persistence step) failed and the point is
    /// at risk until the next successful sync or compaction — the
    /// at-risk count is visible via [`TsDb::durability_stats`]. On an
    /// in-memory store this never fails.
    ///
    /// Durable-write protocol (per point, under the shard write lock):
    /// WAL append first, then the in-memory apply; if the apply sealed
    /// a block, the seal is persisted with the WAL-sync → segment
    /// append → segment-sync → marker sequence (see
    /// [`crate::recover`]); finally, if the WAL outgrew
    /// [`DurOptions::compact_wal_bytes`], the shard compacts in place.
    pub fn try_insert(&self, key: SeriesKey, t: u64, v: f64) -> Result<(), DiskError> {
        let idx = shard_of(&key, self.shards.len());
        let Some(shard) = self.shards.get(idx) else {
            return Ok(());
        };
        let mut data = shard.data.write();
        let ShardData {
            series,
            seal_scratch,
            dur,
        } = &mut *data;
        let mut disk: Result<(), DiskError> = Ok(());
        if let Some(d) = dur.as_mut() {
            if let Err(e) = d.wal.append_point(&key, t, v) {
                d.io_errors += 1;
                disk = Err(e);
            }
        }
        let sealed = series
            .entry(key.clone())
            .or_default()
            .push_with_scratch(t, v, seal_scratch);
        if sealed {
            if let Some(d) = dur.as_mut() {
                if let Some(block) = series.get(&key).and_then(|s| s.sealed().last()) {
                    if let Err(e) = d.persist_seal(&key, block) {
                        d.io_errors += 1;
                        if disk.is_ok() {
                            disk = Err(e);
                        }
                    }
                }
            }
        }
        if disk.is_ok() {
            if let (Some(ctx), Some(d)) = (self.dur.as_ref(), dur.as_mut()) {
                if ctx.opts.compact_wal_bytes > 0 && d.wal.bytes() >= ctx.opts.compact_wal_bytes {
                    if let Err(e) = compact_shard(&*ctx.vfs, idx, ctx.opts, series, d) {
                        d.io_errors += 1;
                        disk = Err(e);
                    }
                }
            }
        }
        disk
    }

    /// fsync every shard's WAL, making all appended points durable.
    /// Returns the first failure (remaining shards are still synced).
    pub fn flush(&self) -> Result<(), DiskError> {
        let mut out = Ok(());
        for shard in self.shards.iter() {
            if let Some(d) = shard.data.write().dur.as_mut() {
                if let Err(e) = d.wal.sync() {
                    if out.is_ok() {
                        out = Err(e);
                    }
                }
            }
        }
        out
    }

    /// Compact every shard now (see [`crate::recover`] module docs):
    /// each shard's sealed state is rewritten into a fresh generation
    /// and its WAL restarts from the heads. No-op on in-memory stores.
    pub fn compact(&self) -> Result<(), DiskError> {
        let Some(ctx) = self.dur.as_ref() else {
            return Ok(());
        };
        let mut out = Ok(());
        for (idx, shard) in self.shards.iter().enumerate() {
            let mut data = shard.data.write();
            let ShardData { series, dur, .. } = &mut *data;
            if let Some(d) = dur.as_mut() {
                if let Err(e) = compact_shard(&*ctx.vfs, idx, ctx.opts, series, d) {
                    d.io_errors += 1;
                    if out.is_ok() {
                        out = Err(e);
                    }
                }
            }
        }
        out
    }

    /// Re-read every shard's current segment file through the
    /// zero-copy cursor path and verify each block decodes to its
    /// recorded point count — the read-your-writes integrity check the
    /// CI recovery smoke runs. Holds each shard's read lock during its
    /// scan so no append tears the bytes underneath. Returns the
    /// all-zeros check on in-memory stores.
    pub fn verify_segments(&self) -> Result<recover::SegmentCheck, DiskError> {
        let Some(ctx) = self.dur.as_ref() else {
            return Ok(recover::SegmentCheck::default());
        };
        let mut out = recover::SegmentCheck::default();
        for (idx, shard) in self.shards.iter().enumerate() {
            let data = shard.data.read();
            let Some(d) = data.dur.as_ref() else {
                continue;
            };
            let name = recover::names::seg(idx, d.gen);
            let bytes = ctx.vfs.read(&name)?.unwrap_or_default();
            out.merge(&recover::check_segment_bytes(&bytes));
        }
        Ok(out)
    }

    /// Aggregate durability counters, or `None` for in-memory stores.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.dur.as_ref()?;
        let mut s = DurabilityStats::default();
        for shard in self.shards.iter() {
            let data = shard.data.read();
            if let Some(d) = data.dur.as_ref() {
                s.points_appended += d.wal.appended_points;
                s.points_synced += d.wal.synced_points;
                s.points_failed += d.wal.failed_points;
                s.sync_failures += d.wal.sync_failures;
                s.io_errors += d.io_errors;
                s.seals_persisted += d.seals_persisted;
                s.compactions += d.compactions;
                s.wal_bytes += d.wal.bytes();
                s.segment_bytes += d.seg.bytes();
                s.max_gen = s.max_gen.max(d.gen);
            }
        }
        Some(s)
    }

    /// Number of series stored.
    pub fn n_series(&self) -> usize {
        self.shards.iter().map(|s| s.data.read().series.len()).sum()
    }

    /// Total points stored.
    pub fn n_points(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.data
                    .read()
                    .series
                    .values()
                    .map(SeriesBlocks::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Bytes held by the stored columns: encoded sealed blocks plus the
    /// raw mutable heads. Compare against `16 * n_points()` (the
    /// point-vec representation) for the compression ratio.
    pub fn storage_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.data
                    .read()
                    .series
                    .values()
                    .map(|sb| sb.sealed_bytes() + (sb.len() - sb.sealed_len()) * 16)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Total sealed blocks across all series.
    pub fn n_sealed_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.data
                    .read()
                    .series
                    .values()
                    .map(SeriesBlocks::n_sealed)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Keys matching a filter, in key order.
    pub fn keys(&self, filter: &TagFilter) -> Vec<SeriesKey> {
        let mut out: Vec<SeriesKey> = Vec::new();
        for shard in self.shards.iter() {
            let data = shard.data.read();
            out.extend(data.series.keys().filter(|k| filter.matches(k)).cloned());
        }
        // Each shard's BTreeMap iterates sorted, but shards interleave
        // the global order; restore it so callers see what the single
        // map used to produce.
        out.sort();
        out
    }

    /// Raw points of one series within `[t0, t1)`.
    ///
    /// Copies points out into a `Vec`; hot read paths should prefer
    /// [`TsDb::range_for_each`] or [`TsDb::with_cursor`].
    pub fn range(&self, key: &SeriesKey, t0: u64, t1: u64) -> Vec<DataPoint> {
        let mut out = Vec::new();
        self.range_for_each(key, t0, t1, |t, v| out.push(DataPoint { t, v }));
        out
    }

    /// Stream the points of one series within `[t0, t1)` to `f`, in
    /// timestamp order, serving sealed blocks from the owning shard's
    /// decoded-block cache — repeated reads over the same block decode
    /// it once. Returns the number of points visited.
    pub fn range_for_each(
        &self,
        key: &SeriesKey,
        t0: u64,
        t1: u64,
        mut f: impl FnMut(u64, f64),
    ) -> usize {
        self.shard(key).range_for_each(key, t0, t1, &mut f)
    }

    /// Run `f` with a pull-based [`SeriesCursor`] over `[t0, t1)` of
    /// one series. The cursor borrows the owning shard's read lock for
    /// the duration of `f`, so points are decoded on demand and never
    /// copied into an intermediate buffer. Returns `None` when the
    /// series does not exist.
    pub fn with_cursor<R>(
        &self,
        key: &SeriesKey,
        t0: u64,
        t1: u64,
        f: impl FnOnce(&mut SeriesCursor<'_>) -> R,
    ) -> Option<R> {
        let data = self.shard(key).data.read();
        data.series.get(key).map(|series| {
            let mut cursor = series.cursor_in(t0, t1);
            f(&mut cursor)
        })
    }

    /// Aggregate all series matching `filter` over `[t0, t1)`, bucketed
    /// into `bucket_secs`-wide windows aligned to `t0`. Buckets with no
    /// data are omitted. This is OpenTSDB's "aggregate along any subset
    /// of tags": the tags left `None` in the filter are the ones summed
    /// over. With a pool attached the dense fold runs as one partition
    /// scan per shard, merged bucket-by-bucket.
    pub fn aggregate(
        &self,
        filter: &TagFilter,
        agg: Aggregation,
        t0: u64,
        t1: u64,
        bucket_secs: u64,
    ) -> Vec<DataPoint> {
        assert!(bucket_secs > 0, "bucket width must be positive");
        let finish = |sum: f64, n: usize, max: f64, min: f64| match agg {
            Aggregation::Sum => sum,
            Aggregation::Avg => sum / n as f64,
            Aggregation::Max => max,
            Aggregation::Min => min,
        };
        if t1 <= t0 {
            return Vec::new();
        }
        // Clamp the requested window to the data actually present
        // (block metadata only — nothing is decoded), so open-ended
        // queries still take the dense-bucket path below.
        let mut data_min = u64::MAX;
        let mut data_max = 0u64;
        let mut any = false;
        for shard in self.shards.iter() {
            let data = shard.data.read();
            for (key, series) in &data.series {
                if !filter.matches(key) {
                    continue;
                }
                if let (Some(lo), Some(hi)) = (series.min_t(), series.max_t()) {
                    any = true;
                    data_min = data_min.min(lo);
                    data_max = data_max.max(hi);
                }
            }
        }
        let eff_lo = data_min.max(t0);
        let eff_hi = data_max.min(t1 - 1); // inclusive upper bound
        if !any || eff_hi < eff_lo {
            return Vec::new();
        }
        let lo_b = (eff_lo - t0) / bucket_secs;
        let hi_b = (eff_hi - t0) / bucket_secs;
        let span = hi_b - lo_b + 1;
        // A flat bucket array beats a tree for every realistic window
        // (a month of 1 h buckets is 720 entries); degenerate sparse
        // spans fall back to the tree.
        const DENSE_MAX: u64 = 1 << 16;
        if span <= DENSE_MAX {
            let dense = match self.pool.as_deref() {
                // Parallel partition scan: one dense partial per
                // shard, merged bucket-by-bucket in shard order (so
                // the result is deterministic for a given layout).
                Some(pool) if pool.workers() > 1 && self.shards.len() > 1 => {
                    let partials = pool.map_parts(self.shards.len(), |i, _scratch| {
                        let mut part = vec![ACC_ZERO; span as usize];
                        let data = self.shards[i].data.read();
                        fold_dense(&data, filter, t0, t1, bucket_secs, lo_b, &mut part);
                        part
                    });
                    let mut dense = vec![ACC_ZERO; span as usize];
                    for part in partials {
                        for (e, p) in dense.iter_mut().zip(part) {
                            e.0 += p.0;
                            e.1 += p.1;
                            e.2 = e.2.max(p.2);
                            e.3 = e.3.min(p.3);
                        }
                    }
                    dense
                }
                // Sequential: fold every shard into one dense buffer
                // (a single allocation per query).
                _ => {
                    let mut dense = vec![ACC_ZERO; span as usize];
                    for shard in self.shards.iter() {
                        let data = shard.data.read();
                        fold_dense(&data, filter, t0, t1, bucket_secs, lo_b, &mut dense);
                    }
                    dense
                }
            };
            return dense
                .into_iter()
                .enumerate()
                .filter(|&(_, (_, n, _, _))| n > 0)
                .map(|(i, (sum, n, max, min))| DataPoint {
                    t: t0 + (lo_b + i as u64) * bucket_secs,
                    v: finish(sum, n, max, min),
                })
                .collect();
        }
        // bucket index → (sum, count, max, min)
        let mut buckets: BTreeMap<u64, Acc> = BTreeMap::new();
        for shard in self.shards.iter() {
            let data = shard.data.read();
            for (key, series) in &data.series {
                if !filter.matches(key) {
                    continue;
                }
                series.for_each_in(t0, t1, |t, v| {
                    let b = (t - t0) / bucket_secs;
                    let e = buckets.entry(b).or_insert(ACC_ZERO);
                    e.0 += v;
                    e.1 += 1;
                    e.2 = e.2.max(v);
                    e.3 = e.3.min(v);
                });
            }
        }
        buckets
            .into_iter()
            .map(|(b, (sum, n, max, min))| DataPoint {
                t: t0 + b * bucket_secs,
                v: finish(sum, n, max, min),
            })
            .collect()
    }

    /// Align two aggregated series on their common buckets and return the
    /// paired values — the input to a §VI-A interference correlation.
    pub fn aligned(
        &self,
        a: (&TagFilter, Aggregation),
        b: (&TagFilter, Aggregation),
        t0: u64,
        t1: u64,
        bucket_secs: u64,
    ) -> Vec<(f64, f64)> {
        let sa = self.aggregate(a.0, a.1, t0, t1, bucket_secs);
        let sb = self.aggregate(b.0, b.1, t0, t1, bucket_secs);
        let mb: BTreeMap<u64, f64> = sb.into_iter().map(|p| (p.t, p.v)).collect();
        sa.into_iter()
            .filter_map(|p| mb.get(&p.t).map(|v| (p.v, *v)))
            .collect()
    }
}

/// Fold one shard's matching series into dense buckets (indices
/// relative to `lo_b`). Shared by the sequential and parallel paths so
/// both run the identical per-point fold.
fn fold_dense(
    data: &ShardData,
    filter: &TagFilter,
    t0: u64,
    t1: u64,
    bucket_secs: u64,
    lo_b: u64,
    dense: &mut [Acc],
) {
    for (key, series) in &data.series {
        if !filter.matches(key) {
            continue;
        }
        series.for_each_in(t0, t1, |t, v| {
            let b = ((t - t0) / bucket_secs).saturating_sub(lo_b) as usize;
            if let Some(e) = dense.get_mut(b) {
                e.0 += v;
                e.1 += 1;
                e.2 = e.2.max(v);
                e.3 = e.3.min(v);
            }
        });
    }
}

#[cfg(all(test, not(loom)))]
mod durable_tests {
    use super::*;
    use crate::block::SEAL_THRESHOLD;
    use crate::vfs::MemVfs;
    use tacc_simnode::faults::DiskFaultPlan;

    fn key(host: &str, event: &str) -> SeriesKey {
        SeriesKey::new(host, "mdc", "scratch", event)
    }

    fn opts(sync_every: u64, compact_wal_bytes: u64) -> DurOptions {
        DurOptions {
            sync_every,
            compact_wal_bytes,
        }
    }

    /// The workload every durable test ingests: `per_series`
    /// increasing-timestamp points on each of six series spread over
    /// the shards. Returns how many points were applied in memory
    /// before the first disk fault surfaced (all of them when the
    /// disk is healthy).
    fn ingest(db: &TsDb, per_series: usize) -> usize {
        let keys: Vec<SeriesKey> = (0..6)
            .map(|i| {
                key(
                    &format!("c{i:02}"),
                    if i % 2 == 0 { "reqs" } else { "wait" },
                )
            })
            .collect();
        let mut applied = 0;
        'outer: for p in 0..per_series {
            for (ki, k) in keys.iter().enumerate() {
                let t = (p as u64) * 10 + 1;
                let v = (p * 31 + ki) as f64;
                let r = db.try_insert(k.clone(), t, v);
                applied += 1;
                if r.is_err() {
                    break 'outer;
                }
            }
        }
        applied
    }

    /// Every series' recovered points must be an exact prefix of the
    /// sequence inserted for it (increasing timestamps ⇒ range order
    /// is insertion order). Returns the total recovered point count.
    fn assert_series_are_prefixes(recovered: &TsDb, reference: &TsDb) -> usize {
        let mut total = 0;
        for k in reference.keys(&TagFilter::any()) {
            let want = reference.range(&k, 0, u64::MAX);
            let got = recovered.range(&k, 0, u64::MAX);
            assert!(
                got.len() <= want.len(),
                "{k}: recovered {} > inserted {}",
                got.len(),
                want.len()
            );
            assert_eq!(
                got,
                want[..got.len()],
                "{k}: recovered points must be an exact insertion prefix"
            );
            total += got.len();
        }
        assert_eq!(total, recovered.n_points());
        total
    }

    #[test]
    fn durable_store_reopens_identical_after_clean_shutdown() {
        let vfs = Arc::new(MemVfs::new());
        let (db, report) = TsDb::recover(vfs.clone(), 4, opts(32, 0)).unwrap();
        assert_eq!(report.fresh_shards, 4);
        assert!(db.is_durable());
        let reference = TsDb::with_shards(4);
        ingest(&db, 900);
        ingest(&reference, 900);
        db.flush().unwrap();
        assert_eq!(db.durability_stats().unwrap().points_at_risk(), 0);
        drop(db);

        let (back, report) = TsDb::recover(vfs, 4, opts(32, 0)).unwrap();
        assert!(report.balances(), "{report:?}");
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(back.n_points(), reference.n_points());
        assert_eq!(back.n_series(), reference.n_series());
        let n = assert_series_are_prefixes(&back, &reference);
        assert_eq!(n, reference.n_points());
        // Sealed blocks were installed from the segment, not re-sealed.
        assert!(report.blocks_installed > 0);
        assert!(back.verify_segments().unwrap().is_clean());
    }

    #[test]
    fn kill_at_any_offset_loses_at_most_the_unsynced_tail() {
        const SHARDS: usize = 4;
        const SYNC_EVERY: u64 = 32;
        // Measure the healthy run's total disk traffic once, then
        // sweep kill offsets across it — including offsets that land
        // mid-frame, mid-seal, and mid-compaction.
        let healthy = Arc::new(MemVfs::new());
        let (db, _) = TsDb::recover(healthy.clone(), SHARDS, opts(SYNC_EVERY, 12_000)).unwrap();
        let inserted = ingest(&db, 800);
        let total_bytes = healthy.total_bytes().max(1);
        assert!(
            db.durability_stats().unwrap().compactions > 0,
            "workload must exercise compaction for the sweep to cover it"
        );
        let reference = TsDb::with_shards(SHARDS);
        assert_eq!(ingest(&reference, 800), inserted);

        let mut offsets: Vec<u64> = (0..48).map(|i| i * total_bytes / 48).collect();
        offsets.extend([1, 7, total_bytes - 1, total_bytes / 2 + 13]);
        for kill_at in offsets {
            let vfs = Arc::new(MemVfs::with_faults(DiskFaultPlan::kill_at(kill_at)));
            // Tiny offsets kill the disk while the store is still
            // being created; that too is a crash point recovery must
            // survive, so tolerate the open error and take the image.
            let stats = match TsDb::recover(vfs.clone(), SHARDS, opts(SYNC_EVERY, 12_000)) {
                Ok((db, _)) => {
                    ingest(&db, 800);
                    db.durability_stats().unwrap()
                }
                Err(_) => DurabilityStats::default(),
            };

            // Kill model: everything persisted before the kill offset
            // survives, including the torn straddling append.
            let img = Arc::new(vfs.crash_image());
            let (back, report) = TsDb::recover(img, SHARDS, opts(SYNC_EVERY, 12_000)).unwrap();
            assert!(report.balances(), "kill@{kill_at}: {report:?}");
            let recovered = assert_series_are_prefixes(&back, &reference);
            assert!(
                recovered as u64 >= stats.points_synced,
                "kill@{kill_at}: recovered {recovered} < synced {}",
                stats.points_synced
            );

            // Power-loss model: only the synced prefix (plus a torn
            // sliver) survives. Same invariants, plus the explicit
            // sync_every loss bound.
            let img = Arc::new(vfs.crash_image_dropping_unsynced((kill_at % 23) as usize));
            let (back, report) = TsDb::recover(img, SHARDS, opts(SYNC_EVERY, 12_000)).unwrap();
            assert!(report.balances(), "power-loss@{kill_at}: {report:?}");
            let recovered = assert_series_are_prefixes(&back, &reference);
            assert!(
                recovered as u64 >= stats.points_synced,
                "power-loss@{kill_at}: recovered {recovered} < synced {}",
                stats.points_synced
            );
            let lost = stats.points_appended.saturating_sub(recovered as u64);
            assert!(
                lost <= (SHARDS as u64) * SYNC_EVERY + SHARDS as u64,
                "power-loss@{kill_at}: lost {lost} exceeds the sync_every bound"
            );
        }
    }

    #[test]
    fn compaction_preserves_contents_and_bounds_the_wal() {
        let vfs = Arc::new(MemVfs::new());
        // Tiny compaction threshold: the WAL compacts many times.
        let (db, _) = TsDb::recover(vfs.clone(), 2, opts(16, 8_000)).unwrap();
        let reference = TsDb::with_shards(2);
        ingest(&db, 700);
        ingest(&reference, 700);
        let stats = db.durability_stats().unwrap();
        assert!(stats.compactions >= 2, "{stats:?}");
        assert!(stats.max_gen >= 1);
        assert_eq!(
            assert_series_are_prefixes(&db, &reference),
            reference.n_points()
        );
        db.flush().unwrap();
        drop(db);
        let (back, report) = TsDb::recover(vfs.clone(), 2, opts(16, 8_000)).unwrap();
        assert!(report.balances() && report.is_clean(), "{report:?}");
        assert_eq!(
            assert_series_are_prefixes(&back, &reference),
            reference.n_points()
        );
        // Old-generation files were swept: only the current gen plus
        // manifests and the store meta remain on disk.
        let files = vfs.list().unwrap();
        assert_eq!(files.len(), 2 * 3 + 1, "{files:?}");
    }

    #[test]
    fn orphaned_segment_block_is_dropped_without_losing_points() {
        // One series, exactly one sealed block, and a WAL whose seal
        // marker never gets synced: power loss leaves the block
        // orphaned in the segment. Recovery must drop it and rebuild
        // the same points from the replayed log.
        let vfs = Arc::new(MemVfs::new());
        let (db, _) = TsDb::recover(vfs.clone(), 1, opts(1 << 20, 0)).unwrap();
        let k = key("c00", "reqs");
        for i in 0..SEAL_THRESHOLD as u64 {
            db.try_insert(k.clone(), i * 10, i as f64).unwrap();
        }
        let stats = db.durability_stats().unwrap();
        assert_eq!(stats.seals_persisted, 1);
        // persist_seal synced the WAL through the 512 points; only the
        // marker is unsynced.
        assert_eq!(stats.points_synced, SEAL_THRESHOLD as u64);
        drop(db);

        let img = Arc::new(vfs.crash_image_dropping_unsynced(0));
        let (back, report) = TsDb::recover(img, 1, opts(1 << 20, 0)).unwrap();
        assert_eq!(report.blocks_orphaned, 1, "{report:?}");
        assert_eq!(report.seals_applied, 0);
        assert_eq!(report.points_replayed, SEAL_THRESHOLD as u64);
        assert!(report.balances(), "{report:?}");
        assert_eq!(back.n_points(), SEAL_THRESHOLD);
        let pts = back.range(&k, 0, u64::MAX);
        assert_eq!(pts.len(), SEAL_THRESHOLD);
        assert_eq!(pts[SEAL_THRESHOLD - 1].v, (SEAL_THRESHOLD - 1) as f64);
    }

    #[test]
    fn meta_pins_the_shard_count_across_reopens() {
        let vfs = Arc::new(MemVfs::new());
        let (db, _) = TsDb::recover(vfs.clone(), 4, DurOptions::default()).unwrap();
        assert_eq!(db.n_shards(), 4);
        ingest(&db, 50);
        db.flush().unwrap();
        drop(db);
        // Asking for 8 shards on reopen must not re-partition the key
        // space: the persisted count wins.
        let (back, report) = TsDb::recover(vfs, 8, DurOptions::default()).unwrap();
        assert_eq!(back.n_shards(), 4);
        assert!(report.balances());
        assert_eq!(back.n_points(), 300);
    }

    #[test]
    fn verify_segments_detects_a_flipped_bit() {
        let vfs = Arc::new(MemVfs::new());
        let (db, _) = TsDb::recover(vfs.clone(), 1, opts(64, 0)).unwrap();
        for i in 0..(SEAL_THRESHOLD as u64 * 2) {
            db.insert(key("c00", "reqs"), i * 10, i as f64);
        }
        db.flush().unwrap();
        let clean = db.verify_segments().unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.blocks, 2);
        assert_eq!(clean.points, 2 * SEAL_THRESHOLD as u64);
        // Flip one stored bit in the middle of the segment file.
        let seg_name = vfs
            .list()
            .unwrap()
            .into_iter()
            .find(|n| n.contains(".seg."))
            .unwrap();
        assert!(vfs.flip_bit(&seg_name, 40, 3));
        let dirty = db.verify_segments().unwrap();
        assert!(!dirty.is_clean());
        assert!(dirty.blocks < 2 || dirty.torn_bytes > 0);
    }

    #[test]
    fn sync_failures_are_absorbed_and_surfaced() {
        // Every later fsync fails; appends keep succeeding. The store
        // stays available, inserts report the fault, and the at-risk
        // counter grows instead of anything panicking.
        let plan = DiskFaultPlan {
            sync_fail_at: (8..4096).collect(),
            ..DiskFaultPlan::default()
        };
        let vfs = Arc::new(MemVfs::with_faults(plan));
        let (db, _) = TsDb::recover(vfs, 1, opts(4, 0)).unwrap();
        let k = key("c00", "reqs");
        let mut failures = 0;
        for i in 0..64u64 {
            if db.try_insert(k.clone(), i, i as f64).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "batched syncs must start failing");
        assert_eq!(db.n_points(), 64, "memory apply never stops");
        let stats = db.durability_stats().unwrap();
        assert!(stats.sync_failures > 0);
        assert!(stats.points_at_risk() > 0);
        assert!(db.flush().is_err());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(host: &str, event: &str) -> SeriesKey {
        SeriesKey::new(host, "mdc", "scratch", event)
    }

    #[test]
    fn insert_and_range() {
        let db = TsDb::new();
        for t in [100u64, 200, 300, 400] {
            db.insert(key("c1", "reqs"), t, t as f64);
        }
        let pts = db.range(&key("c1", "reqs"), 150, 350);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].t, 200);
        assert_eq!(db.n_series(), 1);
        assert_eq!(db.n_points(), 4);
    }

    #[test]
    fn out_of_order_insert_keeps_sorted() {
        let db = TsDb::new();
        db.insert(key("c1", "reqs"), 300, 3.0);
        db.insert(key("c1", "reqs"), 100, 1.0);
        db.insert(key("c1", "reqs"), 200, 2.0);
        let pts = db.range(&key("c1", "reqs"), 0, 1000);
        let ts: Vec<u64> = pts.iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![100, 200, 300]);
    }

    #[test]
    fn aggregate_sums_across_hosts() {
        // "aggregated along any subset of these tags": leave host
        // unspecified to sum the per-host series.
        let db = TsDb::new();
        for host in ["c1", "c2", "c3"] {
            db.insert(key(host, "reqs"), 100, 10.0);
            db.insert(key(host, "reqs"), 700, 20.0);
        }
        db.insert(key("c1", "wait"), 100, 999.0); // different event: excluded
        let f = TagFilter::any().dev_type("mdc").event("reqs");
        let series = db.aggregate(&f, Aggregation::Sum, 0, 1000, 600);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], DataPoint { t: 0, v: 30.0 });
        assert_eq!(series[1], DataPoint { t: 600, v: 60.0 });
    }

    #[test]
    fn aggregate_avg_max_min() {
        let db = TsDb::new();
        db.insert(key("c1", "reqs"), 10, 1.0);
        db.insert(key("c2", "reqs"), 20, 3.0);
        let f = TagFilter::any().event("reqs");
        assert_eq!(db.aggregate(&f, Aggregation::Avg, 0, 100, 100)[0].v, 2.0);
        assert_eq!(db.aggregate(&f, Aggregation::Max, 0, 100, 100)[0].v, 3.0);
        assert_eq!(db.aggregate(&f, Aggregation::Min, 0, 100, 100)[0].v, 1.0);
    }

    #[test]
    fn empty_buckets_are_omitted() {
        let db = TsDb::new();
        db.insert(key("c1", "reqs"), 0, 1.0);
        db.insert(key("c1", "reqs"), 1200, 1.0);
        let f = TagFilter::any();
        let s = db.aggregate(&f, Aggregation::Sum, 0, 1800, 600);
        let ts: Vec<u64> = s.iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![0, 1200]);
    }

    #[test]
    fn aligned_pairs_common_buckets_only() {
        let db = TsDb::new();
        db.insert(key("c1", "reqs"), 0, 5.0);
        db.insert(key("c1", "reqs"), 600, 7.0);
        db.insert(key("c1", "wait"), 600, 70.0);
        db.insert(key("c1", "wait"), 1200, 80.0);
        let fa = TagFilter::any().event("reqs");
        let fb = TagFilter::any().event("wait");
        let pairs = db.aligned(
            (&fa, Aggregation::Sum),
            (&fb, Aggregation::Sum),
            0,
            1800,
            600,
        );
        assert_eq!(pairs, vec![(7.0, 70.0)]);
    }

    #[test]
    fn range_for_each_streams_in_order() {
        let db = TsDb::new();
        // Enough points to roll at least one sealed block.
        for i in 0..1500u64 {
            db.insert(key("c1", "reqs"), i * 10, i as f64);
        }
        assert!(db.n_sealed_blocks() >= 1);
        let mut got = Vec::new();
        let n = db.range_for_each(&key("c1", "reqs"), 100, 300, |t, v| got.push((t, v)));
        assert_eq!(n, got.len());
        let want: Vec<(u64, f64)> = db
            .range(&key("c1", "reqs"), 100, 300)
            .iter()
            .map(|p| (p.t, p.v))
            .collect();
        assert_eq!(got, want);
        assert_eq!(
            db.range_for_each(&key("c9", "reqs"), 0, 100, |_, _| {}),
            0,
            "missing series visits nothing"
        );
    }

    #[test]
    fn cursor_matches_range() {
        let db = TsDb::new();
        for i in 0..2000u64 {
            db.insert(key("c1", "reqs"), i, (i * 2) as f64);
        }
        let via_cursor: Vec<(u64, f64)> = db
            .with_cursor(&key("c1", "reqs"), 500, 1600, |cur| {
                let mut out = Vec::new();
                while let Some(p) = cur.next_point() {
                    out.push(p);
                }
                out
            })
            .unwrap();
        let via_range: Vec<(u64, f64)> = db
            .range(&key("c1", "reqs"), 500, 1600)
            .iter()
            .map(|p| (p.t, p.v))
            .collect();
        assert_eq!(via_cursor, via_range);
        assert!(db.with_cursor(&key("c9", "x"), 0, 1, |_| ()).is_none());
    }

    #[test]
    fn shard_counts_do_not_change_query_results() {
        // The same inserts against 1..=8 shards answer every query the
        // same way (Sum within one bucket is order-sensitive only in
        // float rounding; these values are exact in f64).
        let mk = |shards: usize| {
            let db = TsDb::with_shards(shards);
            for h in 0..16 {
                for i in 0..600u64 {
                    db.insert(key(&format!("c{h:02}"), "reqs"), i * 10, (i % 7) as f64);
                }
            }
            db
        };
        let reference = mk(1);
        let f = TagFilter::any().event("reqs");
        let ref_keys = reference.keys(&TagFilter::any());
        let ref_agg = reference.aggregate(&f, Aggregation::Max, 0, 6000, 600);
        for shards in [2usize, 4, 8] {
            let db = mk(shards);
            assert_eq!(db.n_shards(), shards);
            assert_eq!(db.n_series(), reference.n_series());
            assert_eq!(db.n_points(), reference.n_points());
            assert_eq!(db.keys(&TagFilter::any()), ref_keys, "{shards} shards");
            assert_eq!(
                db.aggregate(&f, Aggregation::Max, 0, 6000, 600),
                ref_agg,
                "{shards} shards"
            );
            let k = key("c03", "reqs");
            assert_eq!(db.range(&k, 100, 2000), reference.range(&k, 100, 2000));
        }
    }

    #[test]
    fn pooled_aggregate_matches_sequential() {
        let seq = TsDb::new();
        let par = TsDb::new().with_pool(Arc::new(WorkerPool::new(4)));
        for h in 0..12 {
            for i in 0..700u64 {
                let k = key(&format!("n{h:02}"), "reqs");
                seq.insert(k.clone(), i * 60, (h * 1000 + i) as f64);
                par.insert(k, i * 60, (h * 1000 + i) as f64);
            }
        }
        let f = TagFilter::any().event("reqs");
        for agg in [
            Aggregation::Sum,
            Aggregation::Avg,
            Aggregation::Max,
            Aggregation::Min,
        ] {
            let a = seq.aggregate(&f, agg, 0, 700 * 60, 3600);
            let b = par.aggregate(&f, agg, 0, 700 * 60, 3600);
            assert_eq!(a.len(), b.len(), "{agg:?}");
            for (pa, pb) in a.iter().zip(b.iter()) {
                assert_eq!(pa.t, pb.t);
                // Shard merge may reassociate float additions; the
                // values here are integral and exact either way.
                assert!(
                    (pa.v - pb.v).abs() <= 1e-9 * (1.0 + pa.v.abs()),
                    "{agg:?}: {} vs {}",
                    pa.v,
                    pb.v
                );
            }
        }
    }

    proptest! {
        /// Sum aggregation is linear: the sum over all hosts equals the
        /// sum of per-host aggregates, bucket by bucket.
        #[test]
        fn sum_aggregation_is_linear(
            pts in proptest::collection::vec((0u64..3, 0u64..3600, -1e6f64..1e6), 1..80)
        ) {
            let db = TsDb::new();
            for (h, t, v) in &pts {
                db.insert(key(&format!("c{h}"), "reqs"), *t, *v);
            }
            let all = db.aggregate(&TagFilter::any(), Aggregation::Sum, 0, 3600, 600);
            let mut per_host: BTreeMap<u64, f64> = BTreeMap::new();
            for h in 0..3u64 {
                let f = TagFilter::any().host(&format!("c{h}"));
                for p in db.aggregate(&f, Aggregation::Sum, 0, 3600, 600) {
                    *per_host.entry(p.t).or_default() += p.v;
                }
            }
            prop_assert_eq!(all.len(), per_host.len());
            for p in all {
                let want = per_host[&p.t];
                prop_assert!((p.v - want).abs() <= 1e-9 * (1.0 + want.abs()));
            }
        }

        /// Sharded stores answer exactly like a single-shard reference
        /// for arbitrary interleaved ingest: `range_for_each` (and the
        /// cached read path under it) is bit-identical; `aggregate`
        /// counts/extrema are identical and sums agree to rounding.
        #[test]
        fn sharded_queries_match_single_shard_reference(
            pts in proptest::collection::vec(
                (0u64..4, 0u64..4000, -1e9f64..1e9), 1..700),
            shards in 2usize..=8
        ) {
            let reference = TsDb::with_shards(1);
            let db = TsDb::with_shards(shards);
            for (h, t, v) in &pts {
                let k = key(&format!("w{h}"), "reqs");
                reference.insert(k.clone(), *t, *v);
                db.insert(k, *t, *v);
            }
            prop_assert_eq!(db.n_points(), reference.n_points());
            prop_assert_eq!(db.keys(&TagFilter::any()),
                            reference.keys(&TagFilter::any()));
            // Per-series reads are bit-identical (same per-series
            // storage, only the owning lock differs) — read twice so
            // the second pass exercises the decoded-block cache.
            for h in 0..4u64 {
                let k = key(&format!("w{h}"), "reqs");
                let want = reference.range(&k, 500, 3500);
                prop_assert_eq!(&db.range(&k, 500, 3500), &want);
                prop_assert_eq!(&db.range(&k, 500, 3500), &want);
            }
            // Aggregates: counts and extrema exact, sums to rounding.
            let f = TagFilter::any().event("reqs");
            for agg in [Aggregation::Max, Aggregation::Min] {
                prop_assert_eq!(
                    db.aggregate(&f, agg, 0, 4000, 600),
                    reference.aggregate(&f, agg, 0, 4000, 600)
                );
            }
            let a = db.aggregate(&f, Aggregation::Sum, 0, 4000, 600);
            let b = reference.aggregate(&f, Aggregation::Sum, 0, 4000, 600);
            prop_assert_eq!(a.len(), b.len());
            for (pa, pb) in a.iter().zip(b.iter()) {
                prop_assert_eq!(pa.t, pb.t);
                prop_assert!((pa.v - pb.v).abs() <= 1e-9 * (1.0 + pb.v.abs()));
            }
        }
    }
}
