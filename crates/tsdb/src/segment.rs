//! Append-only per-shard segment files holding sealed columnar
//! blocks.
//!
//! A segment is a sequence of WAL-style frames (see [`crate::wal`]),
//! each carrying one sealed block:
//!
//! ```text
//! [0x11][host][dev_type][device][event]      4 × (varint len + bytes)
//!       [count varint][min_t varint][max_t varint]
//!       [ts_len varint][ts bytes][vs bytes]  vs = rest of payload
//! ```
//!
//! The `ts`/`vs` byte runs are the block's encoded columns *verbatim*
//! (delta-of-delta varint timestamps; byte-aligned XOR values with
//! their zero-pad tail), so a scan hands [`BlockCursor`] the mapped
//! file bytes directly — decoding a persisted block allocates nothing
//! and takes the same code path as an in-memory one.
//!
//! Blocks are addressed by *ordinal* (position in the file). The WAL's
//! Seal records name ordinals; recovery installs a block only when its
//! marker survived, and a marker is only ever written after this
//! file's fsync — so a surviving marker proves its block (see
//! [`crate::recover`]).
//!
//! This module is on the `cargo xtask lint` deny list: no panicking
//! constructs, no unchecked indexing.

use crate::block::{get_varint, put_varint, BlockCursor, SealedBlock, XOR_PAD};
use crate::series::SeriesKey;
use crate::vfs::{DiskError, DurFile};
#[cfg(test)]
use crate::wal::ScanStop;
use crate::wal::{append_repairing, put_frame, FrameScan};

const KIND_BLOCK: u8 = 0x11;

/// Append-side of one shard's segment file.
pub(crate) struct SegmentWriter {
    file: Box<dyn DurFile>,
    /// Frame staging buffer, reused across appends.
    frame: Vec<u8>,
    /// Payload staging buffer, reused across appends.
    payload: Vec<u8>,
    /// Blocks in the file (== the next block's ordinal).
    pub(crate) blocks: u64,
}

impl SegmentWriter {
    /// Wrap an already-positioned file that holds `blocks` valid
    /// block records (recovery path; `blocks == 0` for a fresh file).
    // alloc: cold-fn (writer construction; the frame/payload buffers are reused per block)
    pub(crate) fn open(file: Box<dyn DurFile>, blocks: u64) -> SegmentWriter {
        SegmentWriter {
            file,
            frame: Vec::new(),
            payload: Vec::new(),
            blocks,
        }
    }

    /// Current file length.
    pub(crate) fn bytes(&self) -> u64 {
        self.file.len()
    }

    /// Append one sealed block; returns its ordinal. The caller must
    /// [`SegmentWriter::sync`] before writing the WAL seal marker that
    /// names the ordinal.
    pub(crate) fn append_block(
        &mut self,
        key: &SeriesKey,
        block: &SealedBlock,
    ) -> Result<u64, DiskError> {
        self.payload.clear();
        self.payload.push(KIND_BLOCK);
        for s in [
            key.host.as_str(),
            key.dev_type.as_str(),
            key.device.as_str(),
            key.event.as_str(),
        ] {
            put_varint(&mut self.payload, s.len() as u64);
            self.payload.extend_from_slice(s.as_bytes());
        }
        put_varint(&mut self.payload, block.len() as u64);
        put_varint(&mut self.payload, block.min_t());
        put_varint(&mut self.payload, block.max_t());
        let ts = block.ts_col();
        let vs = block.vs_col();
        put_varint(&mut self.payload, ts.len() as u64);
        self.payload.extend_from_slice(ts);
        self.payload.extend_from_slice(vs);
        self.frame.clear();
        put_frame(&mut self.frame, &self.payload);
        append_repairing(&mut *self.file, &self.frame)?;
        let ordinal = self.blocks;
        self.blocks += 1;
        Ok(ordinal)
    }

    /// fsync the segment file.
    pub(crate) fn sync(&mut self) -> Result<(), DiskError> {
        self.file.sync()
    }
}

/// One block record borrowed out of a segment scan. The column slices
/// point into the scanned buffer — cursoring over them is zero-copy.
#[derive(Clone, Debug)]
pub(crate) struct BlockRec<'a> {
    /// Position of this block in the segment file.
    pub(crate) ordinal: u64,
    /// Series the block belongs to.
    pub(crate) key: SeriesKey,
    /// Point count.
    pub(crate) count: usize,
    /// First timestamp.
    pub(crate) min_t: u64,
    /// Last timestamp.
    pub(crate) max_t: u64,
    /// Encoded timestamp column.
    pub(crate) ts: &'a [u8],
    /// Encoded value column, including its [`XOR_PAD`] tail.
    pub(crate) vs: &'a [u8],
}

impl<'a> BlockRec<'a> {
    /// Zero-copy cursor straight over the segment bytes.
    pub(crate) fn cursor(&self) -> BlockCursor<'a> {
        BlockCursor::over_columns(self.ts, self.vs, self.count)
    }

    /// Materialise an owned [`SealedBlock`] (recovery installs these
    /// into the in-memory store).
    pub(crate) fn to_block(&self) -> SealedBlock {
        SealedBlock::from_parts(self.count, self.min_t, self.max_t, self.ts, self.vs)
    }
}

/// Iterator over the valid block records of a segment buffer. Stops at
/// the first torn or corrupt frame, like the WAL scanner.
pub(crate) struct SegmentScan<'a> {
    frames: FrameScan<'a>,
    total_len: u64,
    /// Byte boundary after the last record that fully decoded — the
    /// reopened writer truncates to here, so a frame whose payload
    /// failed to decode gets overwritten just like a torn one.
    good_len: u64,
    ordinal: u64,
    /// Records whose frame was intact but whose payload didn't decode
    /// (counted, then the scan stops — prefix semantics).
    pub(crate) corrupt_records: u64,
}

impl<'a> SegmentScan<'a> {
    /// Scan `bytes` from the start.
    pub(crate) fn new(bytes: &'a [u8]) -> SegmentScan<'a> {
        SegmentScan {
            frames: FrameScan::new(bytes),
            total_len: bytes.len() as u64,
            good_len: 0,
            ordinal: 0,
            corrupt_records: 0,
        }
    }

    /// Next valid block record.
    #[allow(clippy::should_implement_trait)]
    pub(crate) fn next(&mut self) -> Option<BlockRec<'a>> {
        if self.corrupt_records > 0 {
            return None;
        }
        let payload = self.frames.next()?;
        match decode_block(payload) {
            Some((key, count, min_t, max_t, ts, vs)) => {
                let ordinal = self.ordinal;
                self.ordinal += 1;
                self.good_len = self.frames.valid_len();
                Some(BlockRec {
                    ordinal,
                    key,
                    count,
                    min_t,
                    max_t,
                    ts,
                    vs,
                })
            }
            None => {
                self.corrupt_records += 1;
                None
            }
        }
    }

    /// Bytes covered by fully decoded records (where the writer
    /// reopens; everything past it is truncated away).
    pub(crate) fn valid_len(&self) -> u64 {
        self.good_len
    }

    /// Bytes past the last fully decoded record.
    pub(crate) fn torn_bytes(&self) -> u64 {
        self.total_len - self.good_len
    }

    /// Why the underlying frame scan stopped.
    #[cfg(test)]
    pub(crate) fn stop(&self) -> ScanStop {
        self.frames.stop()
    }

    /// Valid block records seen so far.
    pub(crate) fn blocks(&self) -> u64 {
        self.ordinal
    }
}

/// Decoded block record: key, point count, time bounds, and the raw
/// timestamp / value columns borrowed from the payload.
type DecodedBlock<'a> = (SeriesKey, usize, u64, u64, &'a [u8], &'a [u8]);

fn decode_block(payload: &[u8]) -> Option<DecodedBlock<'_>> {
    let (&kind, rest) = payload.split_first()?;
    if kind != KIND_BLOCK {
        return None;
    }
    let mut pos = 0usize;
    let mut strs = [""; 4];
    for slot in strs.iter_mut() {
        let len = get_varint(rest, &mut pos)? as usize;
        let bytes = rest.get(pos..pos.checked_add(len)?)?;
        pos += len;
        *slot = std::str::from_utf8(bytes).ok()?;
    }
    let count = get_varint(rest, &mut pos)? as usize;
    let min_t = get_varint(rest, &mut pos)?;
    let max_t = get_varint(rest, &mut pos)?;
    let ts_len = get_varint(rest, &mut pos)? as usize;
    let ts = rest.get(pos..pos.checked_add(ts_len)?)?;
    pos += ts_len;
    let vs = rest.get(pos..)?;
    // Sanity floor: the decoder's unaligned load window requires the
    // value column to carry its pad; a block with points must have a
    // non-trivial timestamp column.
    if vs.len() < XOR_PAD || (count > 0 && ts.is_empty()) {
        return None;
    }
    let [host, dev_type, device, event] = strs;
    let key = SeriesKey::new(host, dev_type, device, event);
    Some((key, count, min_t, max_t, ts, vs))
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::vfs::{MemVfs, Vfs};
    use proptest::prelude::*;

    fn key(i: usize) -> SeriesKey {
        SeriesKey::new(&format!("c{i:03}"), "ib", "mlx4_0", "rx_bytes")
    }

    fn sample_block(n: usize, t0: u64) -> SealedBlock {
        let ts: Vec<u64> = (0..n as u64).map(|i| t0 + i * 10).collect();
        let vs: Vec<f64> = (0..n).map(|i| (i as f64) * 1.5 - 3.0).collect();
        SealedBlock::encode(&ts, &vs)
    }

    #[test]
    fn blocks_round_trip_bit_identical() {
        let vfs = MemVfs::new();
        let mut w = SegmentWriter::open(vfs.open_append("s", 0).unwrap(), 0);
        let blocks: Vec<SealedBlock> = (0..3).map(|i| sample_block(64 + i, 1000)).collect();
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(w.append_block(&key(i), b).unwrap(), i as u64);
        }
        w.sync().unwrap();

        let bytes = vfs.read("s").unwrap().unwrap();
        let mut scan = SegmentScan::new(&bytes);
        let mut seen = 0usize;
        while let Some(rec) = scan.next() {
            let orig = &blocks[rec.ordinal as usize];
            assert_eq!(rec.key, key(rec.ordinal as usize));
            assert_eq!(rec.count, orig.len());
            assert_eq!((rec.min_t, rec.max_t), (orig.min_t(), orig.max_t()));
            assert_eq!(rec.ts, orig.ts_col(), "timestamp column bit-identical");
            assert_eq!(rec.vs, orig.vs_col(), "value column bit-identical");
            let back = rec.to_block();
            let mut a = (Vec::new(), Vec::new());
            let mut b = (Vec::new(), Vec::new());
            orig.decode_into(&mut a.0, &mut a.1);
            back.decode_into(&mut b.0, &mut b.1);
            assert_eq!(a, b);
            seen += 1;
        }
        assert_eq!(seen, 3);
        assert_eq!(scan.stop(), ScanStop::Clean);
        assert_eq!(scan.valid_len(), bytes.len() as u64);
    }

    #[test]
    fn zero_copy_cursor_reads_segment_bytes() {
        let vfs = MemVfs::new();
        let mut w = SegmentWriter::open(vfs.open_append("s", 0).unwrap(), 0);
        let block = sample_block(512, 5_000);
        w.append_block(&key(0), &block).unwrap();
        let bytes = vfs.read("s").unwrap().unwrap();
        let mut scan = SegmentScan::new(&bytes);
        let rec = scan.next().unwrap();
        let mut cur = rec.cursor();
        let mut got = Vec::new();
        while let Some(p) = cur.next_point() {
            got.push(p);
        }
        let mut want = Vec::new();
        let mut c = block.cursor();
        while let Some(p) = c.next_point() {
            want.push(p);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn torn_tail_preserves_whole_blocks() {
        let vfs = MemVfs::new();
        let mut w = SegmentWriter::open(vfs.open_append("s", 0).unwrap(), 0);
        for i in 0..2 {
            w.append_block(&key(i), &sample_block(32, 100)).unwrap();
        }
        let bytes = vfs.read("s").unwrap().unwrap();
        let cut = bytes.len() - 7;
        let mut scan = SegmentScan::new(&bytes[..cut]);
        assert!(scan.next().is_some());
        assert!(scan.next().is_none());
        assert_eq!(scan.blocks(), 1);
        assert_eq!(scan.stop(), ScanStop::TornTail);
        assert!(scan.torn_bytes() > 0);
    }

    proptest! {
        /// Segment persistence is lossless for arbitrary point data:
        /// the scanned record's columns are bit-identical to the
        /// in-memory block's, and both cursor to the same points.
        #[test]
        fn persisted_blocks_decode_bit_identical(
            raw in proptest::collection::vec((0u64..1_000_000, -1e12f64..1e12), 1..200)
        ) {
            let mut ts: Vec<u64> = raw.iter().map(|&(t, _)| t).collect();
            ts.sort_unstable();
            let vs: Vec<f64> = raw.iter().map(|&(_, v)| v).collect();
            let block = SealedBlock::encode(&ts, &vs);

            let vfs = MemVfs::new();
            let mut w = SegmentWriter::open(vfs.open_append("s", 0).unwrap(), 0);
            w.append_block(&key(0), &block).unwrap();
            let bytes = vfs.read("s").unwrap().unwrap();
            let mut scan = SegmentScan::new(&bytes);
            let rec = scan.next().expect("one block");
            prop_assert_eq!(rec.ts, block.ts_col());
            prop_assert_eq!(rec.vs, block.vs_col());
            let mut cur = rec.cursor();
            let mut got = Vec::new();
            while let Some(p) = cur.next_point() {
                got.push(p);
            }
            let mut want_c = block.cursor();
            let mut want = Vec::new();
            while let Some(p) = want_c.next_point() {
                want.push(p);
            }
            prop_assert_eq!(got, want);
        }
    }
}
