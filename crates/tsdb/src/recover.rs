//! Crash recovery: shard manifests, generation file naming, the
//! per-shard recovery scan, and the conservation-accounted
//! [`RecoveryReport`].
//!
//! # Per-shard files
//!
//! ```text
//! shard<i>.manifest     append-only generation commits (frames)
//! shard<i>.seg.<g>      sealed blocks of generation g  (segment.rs)
//! shard<i>.wal.<g>      write-ahead log of generation g (wal.rs)
//! ```
//!
//! The manifest is the commit point: a generation exists once its Gen
//! frame is durable, and the *last valid* Gen frame wins. Compaction
//! builds the next generation's files completely (segment with every
//! sealed block, WAL with a `base_blocks` header plus every head
//! point), fsyncs them, then appends the Gen frame — a crash anywhere
//! before that commit leaves the previous generation intact on disk.
//!
//! # Recovery algorithm (per shard)
//!
//! 1. Read the manifest; the last valid Gen frame names generation
//!    `g` (no manifest → fresh shard: create gen-0 files and commit).
//! 2. Scan `seg.<g>` into candidate blocks, stopping at the first
//!    torn or corrupt frame.
//! 3. Replay `wal.<g>` in record order: the Header installs the first
//!    `base_blocks` candidates (the compaction checkpoint); each Point
//!    appends to its series head *without* sealing; each Seal marker
//!    installs candidate block `ordinal` and consumes the replay head
//!    it duplicates. Markers are written only after the segment fsync,
//!    so a surviving marker proves its block; candidate blocks with no
//!    surviving marker (orphans) are dropped — the WAL was fsynced
//!    *before* the block was appended, so every orphaned point was
//!    just replayed into the head. Nothing is lost and nothing is
//!    double-counted.
//! 4. Reopen all three files truncated to their valid prefixes, so
//!    the writers resume on clean frame boundaries.
//!
//! The [`RecoveryReport`] carries delivery_report-style conservation
//! counters; [`RecoveryReport::balances`] checks the two identities
//! the chaos tests assert after every simulated crash.
//!
//! This module is on the `cargo xtask lint` deny list: no panicking
//! constructs, no unchecked indexing.

// alloc: cold-module (recovery and compaction run at startup or off the sample path, never per point)

use crate::block::SealedBlock;
use crate::segment::{SegmentScan, SegmentWriter};
use crate::series::SeriesKey;
use crate::shard::ShardData;
use crate::vfs::{DiskError, DurFile, Vfs};
use crate::wal::{append_repairing, decode_entry, put_frame, FrameScan, WalEntry, WalWriter};
use std::collections::HashMap;
use std::fmt;

/// Tuning knobs for the durable store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurOptions {
    /// fsync the WAL every this many point records (1 = every point).
    /// At most this many trailing points are lost by a crash.
    pub sync_every: u64,
    /// Compact a shard when its WAL grows past this many bytes
    /// (0 disables automatic compaction).
    pub compact_wal_bytes: u64,
}

impl Default for DurOptions {
    fn default() -> DurOptions {
        DurOptions {
            sync_every: 128,
            compact_wal_bytes: 4 << 20,
        }
    }
}

/// Conservation accounting for one recovery pass (summed across
/// shards), in the same spirit as the spool's delivery_report: every
/// record and every point is either applied or accounted for in a
/// named loss bucket — never silently dropped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shards recovered.
    pub shards: u64,
    /// Shards with no on-disk state (created fresh).
    pub fresh_shards: u64,
    /// Valid block records scanned out of segment files.
    pub seg_blocks_scanned: u64,
    /// Blocks installed into the store (base + marker-proven).
    pub blocks_installed: u64,
    /// Scanned blocks with no surviving seal marker, dropped (their
    /// points were replayed from the WAL — see module docs).
    pub blocks_orphaned: u64,
    /// Segment bytes past the last fully decoded record (truncated).
    pub seg_torn_bytes: u64,
    /// Segment frames that passed CRC but failed payload decode.
    pub seg_corrupt_records: u64,
    /// Valid WAL records decoded (all kinds).
    pub wal_records: u64,
    /// Header + key-definition records.
    pub aux_records: u64,
    /// Point records appended to series heads.
    pub points_replayed: u64,
    /// Seal markers that installed their block.
    pub seals_applied: u64,
    /// Seal markers whose block ordinal was not in the scanned
    /// segment prefix (possible only under corruption).
    pub seals_missing: u64,
    /// Compaction-checkpoint blocks the header promised but the
    /// segment scan did not yield (possible only under corruption).
    pub base_blocks_missing: u64,
    /// Decoded records that could not be applied (unknown key id,
    /// duplicate seal marker, repeated header).
    pub record_anomalies: u64,
    /// WAL bytes past the last applied record (truncated).
    pub wal_torn_bytes: u64,
    /// WAL frames that passed CRC but failed payload decode.
    pub wal_corrupt_records: u64,
    /// Points inside installed blocks.
    pub block_points_installed: u64,
    /// Replayed head points consumed by seal-marker installs (these
    /// are the same points as the block's contents).
    pub points_consumed: u64,
    /// Marker installs where the replay head length differed from the
    /// block's count (possible only under corruption).
    pub head_mismatches: u64,
    /// Points present in the store after recovery.
    pub points_recovered: u64,
}

impl RecoveryReport {
    /// Fold another shard's report into this one.
    pub fn merge(&mut self, o: &RecoveryReport) {
        self.shards += o.shards;
        self.fresh_shards += o.fresh_shards;
        self.seg_blocks_scanned += o.seg_blocks_scanned;
        self.blocks_installed += o.blocks_installed;
        self.blocks_orphaned += o.blocks_orphaned;
        self.seg_torn_bytes += o.seg_torn_bytes;
        self.seg_corrupt_records += o.seg_corrupt_records;
        self.wal_records += o.wal_records;
        self.aux_records += o.aux_records;
        self.points_replayed += o.points_replayed;
        self.seals_applied += o.seals_applied;
        self.seals_missing += o.seals_missing;
        self.base_blocks_missing += o.base_blocks_missing;
        self.record_anomalies += o.record_anomalies;
        self.wal_torn_bytes += o.wal_torn_bytes;
        self.wal_corrupt_records += o.wal_corrupt_records;
        self.block_points_installed += o.block_points_installed;
        self.points_consumed += o.points_consumed;
        self.head_mismatches += o.head_mismatches;
        self.points_recovered += o.points_recovered;
    }

    /// The two conservation identities. (1) Every decoded WAL record
    /// is exactly one of: auxiliary, replayed point, applied seal,
    /// missing-block seal, or anomaly. (2) Every recovered point came
    /// from an installed block or a replayed record, minus the replay
    /// points consumed by marker installs (those are the block's own
    /// points, counted once).
    pub fn balances(&self) -> bool {
        self.wal_records
            == self.aux_records
                + self.points_replayed
                + self.seals_applied
                + self.seals_missing
                + self.record_anomalies
            && self.points_recovered
                == self.block_points_installed + self.points_replayed - self.points_consumed
    }

    /// True when recovery saw no torn bytes, corruption, orphans, or
    /// anomalies — i.e. a clean shutdown image.
    pub fn is_clean(&self) -> bool {
        self.seg_torn_bytes == 0
            && self.seg_corrupt_records == 0
            && self.wal_torn_bytes == 0
            && self.wal_corrupt_records == 0
            && self.blocks_orphaned == 0
            && self.seals_missing == 0
            && self.base_blocks_missing == 0
            && self.record_anomalies == 0
            && self.head_mismatches == 0
    }
}

/// Integrity summary of the store's on-disk segment files (see
/// [`crate::TsDb::verify_segments`]): every block record is re-read
/// through the zero-copy cursor and its decoded point count checked
/// against the record header.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentCheck {
    /// Valid block records scanned.
    pub blocks: u64,
    /// Points decoded across all blocks.
    pub points: u64,
    /// Bytes past the last fully decoded record (0 on a healthy
    /// store: segments only gain whole, synced frames).
    pub torn_bytes: u64,
    /// Frames that passed CRC but failed payload decode.
    pub corrupt_records: u64,
    /// Blocks whose cursor decoded a different number of points than
    /// the record header claimed (0 unless bytes rotted undetectably,
    /// which CRC32 makes vanishingly unlikely).
    pub count_mismatches: u64,
}

impl SegmentCheck {
    /// Fold another shard's check into this one.
    pub fn merge(&mut self, o: &SegmentCheck) {
        self.blocks += o.blocks;
        self.points += o.points;
        self.torn_bytes += o.torn_bytes;
        self.corrupt_records += o.corrupt_records;
        self.count_mismatches += o.count_mismatches;
    }

    /// True when every byte of every segment decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.torn_bytes == 0 && self.corrupt_records == 0 && self.count_mismatches == 0
    }
}

/// Scan one shard's segment bytes through the zero-copy cursor path.
pub(crate) fn check_segment_bytes(bytes: &[u8]) -> SegmentCheck {
    let mut out = SegmentCheck::default();
    let mut scan = SegmentScan::new(bytes);
    while let Some(rec) = scan.next() {
        out.blocks = out.blocks.max(rec.ordinal + 1);
        let mut cur = rec.cursor();
        let mut n = 0u64;
        while cur.next_point().is_some() {
            n += 1;
        }
        out.points += n;
        if n != rec.count as u64 {
            out.count_mismatches += 1;
        }
    }
    out.torn_bytes = scan.torn_bytes();
    out.corrupt_records = scan.corrupt_records;
    out
}

/// Per-shard durability writers, carried inside `ShardData` so the
/// shard write lock serialises WAL appends with the in-memory apply.
pub(crate) struct ShardDur {
    /// Write-ahead log of the current generation.
    pub(crate) wal: WalWriter,
    /// Segment file of the current generation.
    pub(crate) seg: SegmentWriter,
    /// The shard manifest, kept open for compaction commits.
    pub(crate) manifest: Box<dyn DurFile>,
    /// Current generation number.
    pub(crate) gen: u64,
    /// Durability faults absorbed on the ingest path (the in-memory
    /// store stays available; these points are at risk until the next
    /// successful sync or compaction).
    pub(crate) io_errors: u64,
    /// Sealed blocks persisted with a durable marker sequence.
    pub(crate) seals_persisted: u64,
    /// Completed compactions.
    pub(crate) compactions: u64,
}

impl ShardDur {
    /// Persist one freshly sealed block. The order is the durability
    /// core (see module docs): WAL fsync *first* (so a block that
    /// loses its marker in a crash is recoverable from the log and can
    /// be dropped as an orphan), then segment append + fsync, then the
    /// seal marker — which rides the next batched WAL sync, because a
    /// lost marker costs nothing.
    pub(crate) fn persist_seal(
        &mut self,
        key: &SeriesKey,
        block: &SealedBlock,
    ) -> Result<(), DiskError> {
        self.wal.sync()?;
        let ordinal = self.seg.append_block(key, block)?;
        self.seg.sync()?;
        self.wal.append_seal(ordinal)?;
        self.seals_persisted += 1;
        Ok(())
    }
}

impl fmt::Debug for ShardDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardDur")
            .field("gen", &self.gen)
            .field("io_errors", &self.io_errors)
            .field("seals_persisted", &self.seals_persisted)
            .field("compactions", &self.compactions)
            .finish_non_exhaustive()
    }
}

/// File-name scheme for one shard's durable state.
pub(crate) mod names {
    /// Manifest file for shard `i`.
    pub(crate) fn manifest(i: usize) -> String {
        format!("shard{i}.manifest")
    }

    /// WAL file for shard `i`, generation `g`.
    pub(crate) fn wal(i: usize, g: u64) -> String {
        format!("shard{i}.wal.{g}")
    }

    /// Segment file for shard `i`, generation `g`.
    pub(crate) fn seg(i: usize, g: u64) -> String {
        format!("shard{i}.seg.{g}")
    }

    /// Prefix owning every file of shard `i` (trailing dot keeps
    /// `shard1.` from matching `shard10.*`).
    pub(crate) fn prefix(i: usize) -> String {
        format!("shard{i}.")
    }
}

/// Manifest Gen record kind byte.
const KIND_GEN: u8 = 0x21;
/// Store-meta record kind byte (shard count).
const KIND_META: u8 = 0x31;

/// Store-wide metadata file name.
pub(crate) const META_NAME: &str = "store.meta";

/// Read the store's persisted shard count, or persist `requested` on
/// first open. Shard routing partitions the key space by shard count,
/// so a durable store must always reopen with the count it was created
/// with — the meta file makes that automatic instead of a footgun.
pub(crate) fn read_or_init_shards(vfs: &dyn Vfs, requested: usize) -> Result<usize, DiskError> {
    if let Some(bytes) = vfs.read(META_NAME)? {
        let mut scan = FrameScan::new(&bytes);
        while let Some(payload) = scan.next() {
            if let Some((&KIND_META, rest)) = payload.split_first() {
                let mut pos = 0usize;
                if let Some(n) = crate::block::get_varint(rest, &mut pos) {
                    return Ok(usize::try_from(n).unwrap_or(1).max(1));
                }
            }
        }
        // Unreadable meta: fall through and rewrite it.
    }
    let n = requested.max(1);
    let mut payload = Vec::with_capacity(11);
    payload.push(KIND_META);
    crate::block::put_varint(&mut payload, n as u64);
    let mut frame = Vec::with_capacity(payload.len() + 8);
    put_frame(&mut frame, &payload);
    let mut file = vfs.open_append(META_NAME, 0)?;
    append_repairing(&mut *file, &frame)?;
    file.sync()?;
    Ok(n)
}

/// Append a Gen commit frame to the manifest and fsync it. This is
/// the linearisation point of a compaction.
pub(crate) fn commit_gen(manifest: &mut dyn DurFile, gen: u64) -> Result<(), DiskError> {
    let mut payload = Vec::with_capacity(11);
    payload.push(KIND_GEN);
    crate::block::put_varint(&mut payload, gen);
    let mut frame = Vec::with_capacity(payload.len() + 8);
    put_frame(&mut frame, &payload);
    append_repairing(manifest, &frame)?;
    manifest.sync()
}

/// Last valid Gen record in manifest bytes, plus the byte length of
/// the valid frame prefix (where the manifest writer reopens).
fn last_gen(bytes: &[u8]) -> (Option<u64>, u64) {
    let mut scan = FrameScan::new(bytes);
    let mut gen = None;
    let mut good = 0u64;
    while let Some(payload) = scan.next() {
        if let Some((&KIND_GEN, rest)) = payload.split_first() {
            let mut pos = 0usize;
            if let Some(g) = crate::block::get_varint(rest, &mut pos) {
                gen = Some(g);
                good = scan.valid_len();
                continue;
            }
        }
        // Unknown or malformed record: stop at the boundary before it.
        break;
    }
    (gen, good)
}

/// Create a brand-new generation-0 shard on `vfs` (no prior state).
fn fresh_shard(
    vfs: &dyn Vfs,
    idx: usize,
    opts: DurOptions,
    report: &mut RecoveryReport,
) -> Result<(ShardData, ShardDur), DiskError> {
    report.fresh_shards += 1;
    let seg = SegmentWriter::open(vfs.open_append(&names::seg(idx, 0), 0)?, 0);
    let wal = WalWriter::create(
        vfs.open_append(&names::wal(idx, 0), 0)?,
        0,
        0,
        opts.sync_every,
    )?;
    let mut manifest = vfs.open_append(&names::manifest(idx), 0)?;
    commit_gen(&mut *manifest, 0)?;
    Ok((
        ShardData::default(),
        ShardDur {
            wal,
            seg,
            manifest,
            gen: 0,
            io_errors: 0,
            seals_persisted: 0,
            compactions: 0,
        },
    ))
}

/// Recover one shard from `vfs` (see module docs for the algorithm).
pub(crate) fn recover_shard(
    vfs: &dyn Vfs,
    idx: usize,
    opts: DurOptions,
    report: &mut RecoveryReport,
) -> Result<(ShardData, ShardDur), DiskError> {
    report.shards += 1;
    let manifest_name = names::manifest(idx);
    let manifest_bytes = vfs.read(&manifest_name)?;
    let (gen, manifest_valid) = match &manifest_bytes {
        Some(bytes) => last_gen(bytes),
        None => (None, 0),
    };
    let Some(gen) = gen else {
        return fresh_shard(vfs, idx, opts, report);
    };

    // ---- 1. Scan the segment into candidate blocks. -----------------
    let seg_bytes = vfs.read(&names::seg(idx, gen))?.unwrap_or_default();
    let mut candidates: Vec<Option<(SeriesKey, SealedBlock)>> = Vec::new();
    let (seg_valid, seg_blocks) = {
        let mut scan = SegmentScan::new(&seg_bytes);
        while let Some(rec) = scan.next() {
            let block = rec.to_block();
            candidates.push(Some((rec.key, block)));
        }
        report.seg_blocks_scanned += scan.blocks();
        report.seg_corrupt_records += scan.corrupt_records;
        report.seg_torn_bytes += scan.torn_bytes();
        (scan.valid_len(), scan.blocks())
    };

    // ---- 2. Replay the WAL. -----------------------------------------
    let wal_bytes = vfs.read(&names::wal(idx, gen))?.unwrap_or_default();
    let mut data = ShardData::default();
    let mut key_map: HashMap<u64, SeriesKey> = HashMap::new();
    let mut base_installed = false;
    let mut wal_valid = 0u64;
    let mut points_in_wal = 0u64;
    {
        let mut frames = FrameScan::new(&wal_bytes);
        loop {
            let Some(payload) = frames.next() else {
                report.wal_torn_bytes += wal_bytes.len() as u64 - wal_valid;
                break;
            };
            let Some(entry) = decode_entry(payload) else {
                // CRC-valid frame with an undecodable payload: stop at
                // the boundary before it, like a torn tail.
                report.wal_corrupt_records += 1;
                report.wal_torn_bytes += wal_bytes.len() as u64 - wal_valid;
                break;
            };
            report.wal_records += 1;
            match entry {
                WalEntry::Header { base_blocks, .. } => {
                    if base_installed {
                        report.record_anomalies += 1;
                    } else {
                        base_installed = true;
                        report.aux_records += 1;
                        let n = usize::try_from(base_blocks).unwrap_or(usize::MAX);
                        for slot in candidates.iter_mut().take(n) {
                            if let Some((key, block)) = slot.take() {
                                install_block(&mut data, key, block, false, report);
                            }
                        }
                        if n > candidates.len() {
                            report.base_blocks_missing += (n - candidates.len()) as u64;
                        }
                    }
                }
                WalEntry::KeyDef { id, key } => {
                    report.aux_records += 1;
                    key_map.insert(id, key);
                }
                WalEntry::Point { key_id, t, v } => match key_map.get(&key_id) {
                    Some(key) => {
                        data.series
                            .entry(key.clone())
                            .or_default()
                            .push_unsealed(t, v);
                        report.points_replayed += 1;
                        points_in_wal += 1;
                    }
                    None => report.record_anomalies += 1,
                },
                WalEntry::Seal { ordinal } => {
                    let idx = usize::try_from(ordinal).unwrap_or(usize::MAX);
                    match candidates.get_mut(idx) {
                        Some(slot) => match slot.take() {
                            Some((key, block)) => {
                                report.seals_applied += 1;
                                install_block(&mut data, key, block, true, report);
                            }
                            // Already installed: duplicate marker.
                            None => report.record_anomalies += 1,
                        },
                        None => report.seals_missing += 1,
                    }
                }
            }
            wal_valid = frames.valid_len();
        }
    }

    // ---- 3. Orphans: blocks with no surviving marker are dropped. ---
    for slot in &candidates {
        if slot.is_some() {
            report.blocks_orphaned += 1;
        }
    }
    drop(candidates);

    report.points_recovered += data.series.values().map(|s| s.len() as u64).sum::<u64>();

    // ---- 4. Reopen writers on the valid prefixes. -------------------
    let seg_file = vfs.open_append(&names::seg(idx, gen), seg_valid)?;
    let wal_file = vfs.open_append(&names::wal(idx, gen), wal_valid)?;
    let manifest = vfs.open_append(&manifest_name, manifest_valid)?;
    let inverse: HashMap<SeriesKey, u64> = key_map.into_iter().map(|(id, k)| (k, id)).collect();
    let dur = ShardDur {
        wal: WalWriter::open(wal_file, inverse, points_in_wal, opts.sync_every),
        seg: SegmentWriter::open(seg_file, seg_blocks),
        manifest,
        gen,
        io_errors: 0,
        seals_persisted: 0,
        compactions: 0,
    };

    // ---- 5. Remove files from other generations. --------------------
    let keep = [names::seg(idx, gen), names::wal(idx, gen), manifest_name];
    let prefix = names::prefix(idx);
    for name in vfs.list()? {
        if name.starts_with(&prefix) && !keep.contains(&name) {
            vfs.remove(&name)?;
        }
    }

    Ok((data, dur))
}

/// Compact one shard to its next generation: write a fresh segment
/// holding every sealed block, a fresh WAL holding a
/// `base_blocks` header plus every head point, fsync both, then commit
/// the generation in the manifest (the linearisation point) and swap
/// the live writers. A crash at *any* step before the commit leaves
/// the previous generation's files intact and authoritative; stale
/// next-gen partials are truncated on the retry and swept at the next
/// recovery. After the commit, the old generation's files are dead
/// and removed best-effort.
///
/// The caller holds the shard write lock, so `series` is a consistent
/// snapshot and no appends race the swap.
// crash-order: new-generation (builds invisible next-gen files; the manifest Gen frame is the commit)
pub(crate) fn compact_shard(
    vfs: &dyn Vfs,
    idx: usize,
    opts: DurOptions,
    series: &std::collections::BTreeMap<SeriesKey, crate::block::SeriesBlocks>,
    dur: &mut ShardDur,
) -> Result<(), DiskError> {
    let next = dur.gen + 1;
    let mut seg = SegmentWriter::open(vfs.open_append(&names::seg(idx, next), 0)?, 0);
    let mut blocks = 0u64;
    for (key, sb) in series {
        for block in sb.sealed() {
            seg.append_block(key, block)?;
            blocks += 1;
        }
    }
    seg.sync()?;
    let mut wal = WalWriter::create(
        vfs.open_append(&names::wal(idx, next), 0)?,
        next,
        blocks,
        opts.sync_every,
    )?;
    for (key, sb) in series {
        let (head_t, head_v) = sb.head_cols();
        for (&t, &v) in head_t.iter().zip(head_v) {
            wal.append_point(key, t, v)?;
        }
    }
    wal.sync()?;
    commit_gen(&mut *dur.manifest, next)?;
    let old_seg = names::seg(idx, dur.gen);
    let old_wal = names::wal(idx, dur.gen);
    dur.gen = next;
    dur.wal = wal;
    dur.seg = seg;
    dur.compactions += 1;
    // Dead files; recovery also sweeps them, so failures here are not
    // durability-relevant.
    let _ = vfs.remove(&old_seg);
    let _ = vfs.remove(&old_wal);
    Ok(())
}

/// Install one recovered block into a series: the replay head it
/// duplicates (if any) is consumed, and the counters keep the point
/// conservation identity exact. A marker install (`from_marker`)
/// lands mid-replay with the block's own points sitting in the head,
/// so it must consume exactly `count`; a compaction base block lands
/// before any points were replayed, so it must consume nothing.
fn install_block(
    data: &mut ShardData,
    key: SeriesKey,
    block: SealedBlock,
    from_marker: bool,
    report: &mut RecoveryReport,
) {
    let count = block.len() as u64;
    let series = data.series.entry(key).or_default();
    let consumed = series.install_sealed(block) as u64;
    let expected = if from_marker { count } else { 0 };
    if consumed != expected {
        report.head_mismatches += 1;
    }
    report.blocks_installed += 1;
    report.block_points_installed += count;
    report.points_consumed += consumed;
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn manifest_last_valid_gen_wins_and_tolerates_torn_tail() {
        let vfs = MemVfs::new();
        let mut m = vfs.open_append("m", 0).unwrap();
        commit_gen(&mut *m, 0).unwrap();
        commit_gen(&mut *m, 1).unwrap();
        commit_gen(&mut *m, 2).unwrap();
        let bytes = vfs.read("m").unwrap().unwrap();
        let (gen, valid) = last_gen(&bytes);
        assert_eq!(gen, Some(2));
        assert_eq!(valid, bytes.len() as u64);

        // Torn final commit: the previous generation wins.
        let (gen, valid) = last_gen(&bytes[..bytes.len() - 3]);
        assert_eq!(gen, Some(1));
        assert!(valid < bytes.len() as u64);

        // Garbage manifest: no generation at all.
        assert_eq!(last_gen(&[0xFF; 16]).0, None);
        assert_eq!(last_gen(&[]).0, None);
    }

    #[test]
    fn fresh_shard_is_empty_clean_and_committed() {
        let vfs = MemVfs::new();
        let mut report = RecoveryReport::default();
        let (data, dur) = recover_shard(&vfs, 3, DurOptions::default(), &mut report).unwrap();
        assert!(data.series.is_empty());
        assert_eq!(dur.gen, 0);
        assert_eq!(report.fresh_shards, 1);
        assert!(report.balances());
        assert!(report.is_clean());
        // A second recovery of the same vfs is no longer fresh.
        drop(dur);
        let mut report2 = RecoveryReport::default();
        let (data2, dur2) = recover_shard(&vfs, 3, DurOptions::default(), &mut report2).unwrap();
        assert_eq!(report2.fresh_shards, 0);
        assert_eq!(dur2.gen, 0);
        assert!(data2.series.is_empty());
        assert!(report2.balances());
    }

    #[test]
    fn report_merge_and_balance_identities() {
        let mut a = RecoveryReport {
            wal_records: 10,
            aux_records: 2,
            points_replayed: 6,
            seals_applied: 1,
            seals_missing: 1,
            block_points_installed: 512,
            points_consumed: 512,
            points_recovered: 6,
            ..RecoveryReport::default()
        };
        assert!(a.balances());
        let b = a;
        a.merge(&b);
        assert!(a.balances());
        assert_eq!(a.wal_records, 20);
        a.points_recovered += 1;
        assert!(!a.balances());
    }
}
