//! Store sharding: hash routing, per-shard state, and the per-shard
//! decoded-block cache.
//!
//! The store is split into [`DEFAULT_SHARDS`] independent shards, each
//! owning a disjoint slice of the key space behind its own
//! reader-writer lock — so ingest and queries touching different
//! series never contend, and a query fans out as one partition scan
//! per shard. Routing is [`shard_of`]: an FNV-1a hash over the four
//! interned tag ids of the [`SeriesKey`]. Interned ids are stable for
//! the process lifetime, so routing is deterministic — every key maps
//! to exactly one shard and the shards partition the key space (the
//! `cargo xtask lint` conformance check verifies this over every
//! `MetricId` series key).
//!
//! Each shard also carries:
//!
//! * a [`SealScratch`] reused by every seal in the shard, so
//!   steady-state ingest performs one allocation per sealed block, and
//! * a FIFO cache of decoded sealed blocks keyed by the block's
//!   process-unique id. Sealed blocks are immutable and re-encoding
//!   (the out-of-order merge path) assigns a *fresh* id, so a cached
//!   decode can never go stale — stale ids simply stop being looked up
//!   and age out. Windowed reads ([`Shard::range_for_each`]) decode a
//!   block once and then serve every later read over the same block
//!   from the cached columns with two binary searches, which is what
//!   repairs the `detail_week_reads` regression: repeated small reads
//!   no longer re-decode 512 points to stream 100.
//!
//! This module is on the `cargo xtask lint` deny list: no panicking
//! constructs, no unchecked indexing.

use crate::block::{SealScratch, SealedBlock, SeriesBlocks, SEAL_THRESHOLD};
use crate::series::SeriesKey;
use crate::sync::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Default shard count for [`crate::TsDb::new`]. Eight matches the
/// paper-era node widths and keeps per-shard series maps small; any
/// count ≥ 1 is valid via [`crate::TsDb::with_shards`].
pub const DEFAULT_SHARDS: usize = 8;

/// Decoded sealed blocks cached per shard. At 512 points a block, 64
/// entries cap a shard's cache at ~512 KiB of decoded columns.
const CACHE_BLOCKS: usize = 64;

/// Route a series key to a shard: FNV-1a folded over the four tags'
/// *string* hashes (precomputed at intern time — one interner
/// read-lock acquisition, no text re-hashing). Depending on the text
/// rather than intern ids makes routing stable **across process
/// restarts**, which the durable store relies on: a series recovered
/// from shard-slot `i`'s files must route back to shard `i` in the new
/// process. Total (every key maps in-range for any `n_shards` ≥ 1) and
/// spreading (distinct hosts and events land on distinct shards).
pub fn shard_of(key: &SeriesKey, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    let h = tacc_simnode::intern::SymbolTable::global().route4(
        key.host,
        key.dev_type,
        key.device,
        key.event,
    );
    ((h ^ (h >> 32)) % n_shards as u64) as usize
}

/// One decoded sealed block: parallel timestamp/value columns.
#[derive(Debug, Default)]
pub(crate) struct DecodedBlock {
    /// Decoded timestamps, sorted.
    pub(crate) ts: Vec<u64>,
    /// Decoded values, parallel to `ts`.
    pub(crate) vs: Vec<f64>,
}

/// FIFO cache of decoded blocks, keyed by [`SealedBlock::id`].
#[derive(Debug, Default)]
struct BlockCache {
    map: HashMap<u64, Arc<DecodedBlock>>,
    /// Insertion order for FIFO eviction; holds each cached id once.
    order: VecDeque<u64>,
}

impl BlockCache {
    fn get(&self, id: u64) -> Option<Arc<DecodedBlock>> {
        self.map.get(&id).cloned()
    }

    fn insert(&mut self, id: u64, dec: Arc<DecodedBlock>) {
        // Id 0 marks a never-encoded (default-constructed) block; it is
        // not unique, so never cache it.
        if id == 0 {
            return;
        }
        if self.map.insert(id, dec).is_none() {
            self.order.push_back(id);
        }
        while self.map.len() > CACHE_BLOCKS {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
    }
}

/// Per-shard series storage plus the shard's reusable seal scratch.
#[derive(Debug, Default)]
pub(crate) struct ShardData {
    /// The shard's slice of the key space.
    pub(crate) series: BTreeMap<SeriesKey, SeriesBlocks>,
    /// Seal-time encode buffers shared by every series in the shard
    /// (ingest holds the shard write lock, so no series seals
    /// concurrently within a shard).
    pub(crate) seal_scratch: SealScratch,
    /// Durability writers (WAL + segment + manifest) when the store
    /// was opened with [`crate::TsDb::recover`]; `None` for a purely
    /// in-memory store. Living behind the shard write lock keeps WAL
    /// appends serialised with their in-memory apply.
    pub(crate) dur: Option<crate::recover::ShardDur>,
}

/// One store shard: its series map behind a reader-writer lock, and
/// its decoded-block cache behind a separate mutex (reads take the
/// data lock shared and touch the cache mutex only briefly, so
/// concurrent readers of different blocks proceed in parallel).
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub(crate) data: RwLock<ShardData>,
    cache: Mutex<BlockCache>,
}

impl Shard {
    /// Build a shard around recovered per-shard state.
    pub(crate) fn with_data(data: ShardData) -> Shard {
        Shard {
            data: RwLock::new(data),
            cache: Mutex::new(BlockCache::default()),
        }
    }

    /// Decoded columns for `block`, from cache or by decoding now.
    /// Decoding happens outside the cache lock; if two readers race on
    /// the same block both decode and the second insert wins — wasted
    /// work, never a wrong answer (sealed blocks are immutable).
    fn cached(&self, block: &SealedBlock) -> Arc<DecodedBlock> {
        let hit = self.cache.lock().get(block.id());
        if let Some(dec) = hit {
            return dec;
        }
        let mut dec = DecodedBlock::default();
        block.decode_into(&mut dec.ts, &mut dec.vs);
        let dec = Arc::new(dec); // alloc: cold (cache-miss decode; hits are the steady state)
        self.cache.lock().insert(block.id(), Arc::clone(&dec));
        dec
    }

    /// Stream the points of one series within `[t0, t1)` to `f`, in
    /// timestamp order, serving sealed blocks from the decoded-block
    /// cache. Returns the number of points visited. Semantically
    /// identical to [`SeriesBlocks::for_each_in`]; the only difference
    /// is where decoded columns live. Generic over the visitor so the
    /// per-point call inlines — a `dyn` callback here costs an
    /// indirect call per point, which is most of a detail read.
    pub(crate) fn range_for_each<F: FnMut(u64, f64)>(
        &self,
        key: &SeriesKey,
        t0: u64,
        t1: u64,
        f: &mut F,
    ) -> usize {
        let data = self.data.read();
        let Some(series) = data.series.get(key) else {
            return 0;
        };
        if t1 <= t0 {
            return 0;
        }
        let mut n = 0usize;
        for block in series.sealed() {
            if block.max_t() < t0 {
                continue;
            }
            if block.min_t() >= t1 {
                break;
            }
            if block.len() <= SEAL_THRESHOLD {
                let dec = self.cached(block);
                let lo = dec.ts.partition_point(|&t| t < t0);
                let hi = dec.ts.partition_point(|&t| t < t1);
                if let (Some(ts), Some(vs)) = (dec.ts.get(lo..hi), dec.vs.get(lo..hi)) {
                    n += ts.len();
                    for (&t, &v) in ts.iter().zip(vs) {
                        f(t, v);
                    }
                }
            } else {
                // Out-of-order merges can grow a block past the seal
                // threshold; stream those through the cursor instead
                // of holding oversize columns in the cache.
                let mut cur = block.cursor();
                while let Some((t, v)) = cur.next_point() {
                    if t >= t1 {
                        break;
                    }
                    if t >= t0 {
                        n += 1;
                        f(t, v);
                    }
                }
            }
        }
        let (head_t, head_v) = series.head_cols();
        let lo = head_t.partition_point(|&t| t < t0);
        let hi = head_t.partition_point(|&t| t < t1);
        if let (Some(ts), Some(vs)) = (head_t.get(lo..hi), head_v.get(lo..hi)) {
            n += ts.len();
            for (&t, &v) in ts.iter().zip(vs) {
                f(t, v);
            }
        }
        n
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn key(host: &str, event: &str) -> SeriesKey {
        SeriesKey::new(host, "mdc", "scratch", event)
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for n in 1..=8 {
            for h in 0..64 {
                let k = key(&format!("c{h:03}"), "reqs");
                let s = shard_of(&k, n);
                assert!(s < n);
                assert_eq!(s, shard_of(&k, n), "routing must be deterministic");
            }
        }
    }

    #[test]
    fn routing_spreads_across_shards() {
        for n in [2usize, 4, 8] {
            let mut hit = vec![false; n];
            for h in 0..256 {
                let k = key(&format!("host{h:04}"), "reqs");
                hit[shard_of(&k, n)] = true;
            }
            assert!(
                hit.iter().all(|&h| h),
                "256 hosts must cover all {n} shards"
            );
        }
    }

    #[test]
    fn cache_serves_identical_points_and_evicts_fifo() {
        let shard = Shard::default();
        {
            let mut data = shard.data.write();
            let ShardData {
                series,
                seal_scratch,
                ..
            } = &mut *data;
            let s = series.entry(key("c1", "reqs")).or_default();
            for i in 0..(SEAL_THRESHOLD as u64 * 2 + 10) {
                s.push_with_scratch(i * 600, i as f64, seal_scratch);
            }
        }
        let collect = |t0: u64, t1: u64| {
            let mut got = Vec::new();
            let n = shard.range_for_each(&key("c1", "reqs"), t0, t1, &mut |t, v| {
                got.push((t, v));
            });
            assert_eq!(n, got.len());
            got
        };
        let cold = collect(1000, 200_000);
        let warm = collect(1000, 200_000);
        assert_eq!(cold, warm, "cached reads must match the cold decode");
        assert!(!cold.is_empty());

        // Overfill the cache: insertions must evict oldest-first and
        // never grow the map past the cap.
        let mut cache = BlockCache::default();
        for id in 1..=(CACHE_BLOCKS as u64 + 20) {
            cache.insert(id, Arc::new(DecodedBlock::default()));
        }
        assert_eq!(cache.map.len(), CACHE_BLOCKS);
        assert!(cache.get(1).is_none(), "oldest entry must be evicted");
        assert!(cache.get(CACHE_BLOCKS as u64 + 20).is_some());
    }
}
