//! Model-checked sharded store concurrency: the seal/read race inside
//! one shard and cross-shard ingest independence, explored across many
//! randomized schedules.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p tacc-tsdb --test loom_shard
//! ```
//!
//! Under `--cfg loom` the store's sync shim (`tacc_tsdb::sync`) swaps
//! the vendored `parking_lot` primitives for the `loom` stand-in's
//! instrumented versions: every shard data-lock acquire and
//! decoded-block-cache lock becomes a scheduler-perturbation point, and
//! `loom::model` re-runs each closure under `LOOM_ITERS` (default 200)
//! distinct randomized schedules. The invariants below must hold on
//! every explored schedule. Without `--cfg loom` this file compiles to
//! nothing, so plain `cargo test` is unaffected.

#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use tacc_tsdb::{SeriesKey, TagFilter, TsDb, SEAL_THRESHOLD};

fn key(host: &str) -> SeriesKey {
    SeriesKey::new(host, "mdc", "scratch", "reqs")
}

/// Two inserters filling distinct series race a reader over one of
/// them while the writes cross the seal threshold (head → sealed block
/// transition). The reader must always observe a sorted prefix of its
/// series with the values it wrote — never a torn, reordered, or
/// partially sealed view — and the final state holds every point.
#[test]
fn seal_read_race_yields_consistent_prefixes() {
    // Enough points to seal one block and start the next head.
    let n = SEAL_THRESHOLD as u64 + 8;
    loom::model(move || {
        let db = Arc::new(TsDb::with_shards(2));
        let d1 = Arc::clone(&db);
        let w1 = thread::spawn(move || {
            for t in 0..n {
                d1.insert(key("alpha"), t, t as f64);
            }
        });
        let d2 = Arc::clone(&db);
        let w2 = thread::spawn(move || {
            for t in 0..n {
                d2.insert(key("beta"), t, (t * 2) as f64);
            }
        });
        // Reader races the seal: repeated windowed reads, each of which
        // must see a sorted prefix with value == timestamp. The second
        // and later reads also exercise the decoded-block cache against
        // concurrent ingest.
        for _ in 0..3 {
            let mut prev: Option<u64> = None;
            let seen = db.range_for_each(&key("alpha"), 0, u64::MAX, |t, v| {
                assert_eq!(v, t as f64, "torn point");
                if let Some(p) = prev {
                    assert!(t > p, "out-of-order read: {t} after {p}");
                }
                prev = Some(t);
            });
            assert!(seen <= n as usize, "reader saw more points than written");
        }
        w1.join().expect("inserter alpha");
        w2.join().expect("inserter beta");
        // Quiescent state: both series complete and correct.
        assert_eq!(db.n_points(), 2 * n as usize);
        for (host, scale) in [("alpha", 1u64), ("beta", 2)] {
            let mut expect = 0u64;
            let seen = db.range_for_each(&key(host), 0, u64::MAX, |t, v| {
                assert_eq!(t, expect);
                assert_eq!(v, (t * scale) as f64);
                expect += 1;
            });
            assert_eq!(seen, n as usize, "{host} complete");
        }
    });
}

/// Concurrent inserters and an aggregating reader across all shards:
/// the cross-shard metadata pass plus per-shard folds lock shards one
/// at a time, which must never deadlock against writers and must
/// produce a sum composed only of fully written points (every value is
/// 1.0, so any torn read would break the count-equals-sum identity).
#[test]
fn cross_shard_aggregate_races_ingest_without_tearing() {
    loom::model(|| {
        let db = Arc::new(TsDb::with_shards(4));
        let writers: Vec<_> = ["h0", "h1", "h2"]
            .iter()
            .map(|host| {
                let d = Arc::clone(&db);
                let host = host.to_string();
                thread::spawn(move || {
                    for t in 0..6u64 {
                        d.insert(key(&host), t * 600, 1.0);
                    }
                })
            })
            .collect();
        let f = TagFilter::any().event("reqs");
        let mid = db.aggregate(&f, tacc_tsdb::Aggregation::Sum, 0, 6 * 600, 600);
        for p in &mid {
            // Every inserted value is 1.0: each bucket's sum is the
            // number of points the scan observed in it.
            assert_eq!(p.v.fract(), 0.0, "torn value in racing aggregate");
            assert!(p.v >= 1.0 && p.v <= 3.0);
        }
        for w in writers {
            w.join().expect("writer");
        }
        let done = db.aggregate(&f, tacc_tsdb::Aggregation::Sum, 0, 6 * 600, 600);
        assert_eq!(done.len(), 6);
        assert!(done.iter().all(|p| p.v == 3.0), "final sums complete");
    });
}
